#pragma once
/// \file frame.hpp
/// Wire format of the process transports (SocketComm streams, ShmComm
/// rings): length-prefixed tagged frames.
///
/// Every message on a connection is one frame — a fixed 24-byte header
/// followed by `count` raw doubles. The header carries the sender rank
/// and tag, so a single stream multiplexes every (tag) channel between a
/// peer pair and the receiver can demultiplex into per-(src, tag)
/// mailboxes without any out-of-band state.
///
/// Byte order is the host's: frames only ever travel between processes
/// forked on the same machine (the launcher's workers), never across
/// architectures. The magic word catches desynchronized or corrupted
/// streams immediately instead of letting a bad length prefix stall the
/// parser.

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

#include "transport/communicator.hpp"

namespace slipflow::transport {

/// What a frame carries.
enum class FrameKind : std::uint16_t {
  kData = 1,       ///< tagged point-to-point payload
  kHello = 2,      ///< connection opener: identifies the dialing rank
  kRelease = 3,    ///< rendezvous barrier release from rank 0
  kHeartbeat = 4,  ///< liveness beat to the launcher: payload {phase, seq}
  kPad = 5,        ///< ring filler: skip to the end of the ring (ShmComm)
};

/// Flag on a kData frame: this is a fragment of a chunked message and
/// more fragments follow on the same (src, tag) channel (ShmComm only —
/// frames larger than half a ring are split so they can always fit).
inline constexpr std::uint16_t kFrameFlagMoreFragments = 1;

struct FrameHeader {
  std::uint32_t magic = 0;
  FrameKind kind = FrameKind::kData;
  std::uint16_t flags = 0;  ///< kFrameFlagMoreFragments, else 0
  std::int32_t src = 0;     ///< sender rank
  std::int32_t tag = 0;     ///< message tag (kData), else 0
  std::uint64_t count = 0;  ///< payload length in doubles
};

inline constexpr std::uint32_t kFrameMagic = 0x534C5046u;  // "SLPF"
inline constexpr std::size_t kFrameHeaderBytes = 24;
/// Sanity bound on one frame's payload (2^28 doubles = 2 GiB); a length
/// beyond it means the stream is desynchronized, not that a message is
/// genuinely that large.
inline constexpr std::uint64_t kMaxFrameDoubles = 1ull << 28;

inline std::array<std::byte, kFrameHeaderBytes> encode_frame_header(
    const FrameHeader& h) {
  std::array<std::byte, kFrameHeaderBytes> out{};
  const std::uint16_t kind = static_cast<std::uint16_t>(h.kind);
  std::memcpy(out.data() + 0, &kFrameMagic, 4);
  std::memcpy(out.data() + 4, &kind, 2);
  std::memcpy(out.data() + 6, &h.flags, 2);
  std::memcpy(out.data() + 8, &h.src, 4);
  std::memcpy(out.data() + 12, &h.tag, 4);
  std::memcpy(out.data() + 16, &h.count, 8);
  return out;
}

/// Decode and validate a header; throws comm_error on a bad magic word,
/// unknown kind, or an absurd payload length (desynchronized stream).
inline FrameHeader decode_frame_header(std::span<const std::byte> bytes) {
  SLIPFLOW_REQUIRE(bytes.size() >= kFrameHeaderBytes);
  FrameHeader h;
  std::uint16_t kind = 0;
  std::memcpy(&h.magic, bytes.data() + 0, 4);
  std::memcpy(&kind, bytes.data() + 4, 2);
  std::memcpy(&h.flags, bytes.data() + 6, 2);
  std::memcpy(&h.src, bytes.data() + 8, 4);
  std::memcpy(&h.tag, bytes.data() + 12, 4);
  std::memcpy(&h.count, bytes.data() + 16, 8);
  if (h.magic != kFrameMagic)
    throw comm_error("frame decode: bad magic word (stream desynchronized)");
  if (kind < 1 || kind > 5)
    throw comm_error("frame decode: unknown frame kind " +
                     std::to_string(kind));
  h.kind = static_cast<FrameKind>(kind);
  if (h.count > kMaxFrameDoubles)
    throw comm_error("frame decode: implausible payload length " +
                     std::to_string(h.count) + " doubles");
  return h;
}

}  // namespace slipflow::transport
