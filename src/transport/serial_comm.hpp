#pragma once
/// \file serial_comm.hpp
/// Single-rank Communicator: collectives are identities and self-sends
/// are an in-memory queue. Lets every parallel code path run unmodified
/// with one rank (useful for tests and as the "sequential" configuration
/// of the parallel runner).

#include <deque>
#include <map>

#include "transport/communicator.hpp"
#include "util/require.hpp"

namespace slipflow::transport {

class SerialComm final : public Communicator {
 public:
  int rank() const override { return 0; }
  int size() const override { return 1; }

  void send(int dest, int tag, std::span<const double> data) override {
    SLIPFLOW_REQUIRE(dest == 0);
    mail_[tag].emplace_back(data.begin(), data.end());
  }

  std::vector<double> recv(int src, int tag) override {
    SLIPFLOW_REQUIRE(src == 0);
    auto it = mail_.find(tag);
    SLIPFLOW_REQUIRE_MSG(it != mail_.end() && !it->second.empty(),
                         "SerialComm: blocking recv with empty mailbox would "
                         "deadlock (tag " << tag << ")");
    std::vector<double> out = std::move(it->second.front());
    it->second.pop_front();
    return out;
  }

  void barrier() override {}

  std::vector<double> allgather(std::span<const double> mine) override {
    return {mine.begin(), mine.end()};
  }

  using Communicator::allreduce_sum;  // the vector overload
  double allreduce_sum(double x) override { return x; }
  double allreduce_max(double x) override { return x; }

 private:
  std::map<int, std::deque<std::vector<double>>> mail_;
};

}  // namespace slipflow::transport
