#pragma once
/// \file serial_comm.hpp
/// Single-rank Communicator: collectives are identities and self-sends
/// are an in-memory queue. Lets every parallel code path run unmodified
/// with one rank (useful for tests and as the "sequential" configuration
/// of the parallel runner).

#include <deque>
#include <map>

#include "transport/communicator.hpp"
#include "util/require.hpp"

namespace slipflow::transport {

class SerialComm final : public Communicator {
 public:
  int rank() const override { return 0; }
  int size() const override { return 1; }

  void send(int dest, int tag, std::span<const double> data) override {
    SLIPFLOW_REQUIRE(dest == 0);
    mail_[tag].emplace_back(data.begin(), data.end());
  }

  std::vector<double> recv(int src, int tag) override {
    SLIPFLOW_REQUIRE(src == 0);
    auto it = mail_.find(tag);
    SLIPFLOW_REQUIRE_MSG(it != mail_.end() && !it->second.empty(),
                         "SerialComm: blocking recv with empty mailbox would "
                         "deadlock (tag " << tag << ")");
    std::vector<double> out = std::move(it->second.front());
    it->second.pop_front();
    return out;
  }

  RecvHandlePtr irecv(int src, int tag) override {
    SLIPFLOW_REQUIRE(src == 0);
    return std::make_unique<Handle>(*this, tag);
  }

  void barrier() override {}

  // det-lint: rank-ordered — single rank, trivially ordered.
  std::vector<double> allgather(std::span<const double> mine) override {
    return {mine.begin(), mine.end()};
  }

  using Communicator::allreduce_sum;  // the vector overload
  // det-lint: rank-ordered — single rank, trivially ordered.
  double allreduce_sum(double x) override { return x; }
  double allreduce_max(double x) override { return x; }

 private:
  /// Self-receives complete as soon as the matching self-send lands in
  /// the mailbox. wait() on a still-empty mailbox reuses recv()'s
  /// would-deadlock diagnostic: with one rank nobody else can ever send.
  class Handle final : public RecvHandle {
   public:
    Handle(SerialComm& comm, int tag) : comm_(comm), tag_(tag) {}

    bool test() override {
      if (done_) return true;
      auto it = comm_.mail_.find(tag_);
      if (it == comm_.mail_.end() || it->second.empty()) return false;
      payload_ = std::move(it->second.front());
      it->second.pop_front();
      done_ = true;
      return true;
    }

    std::vector<double> wait() override {
      if (!test()) payload_ = comm_.recv(0, tag_);  // throws the diagnostic
      done_ = true;
      return std::move(payload_);
    }

   private:
    SerialComm& comm_;
    int tag_;
    bool done_ = false;
    std::vector<double> payload_;
  };

  std::map<int, std::deque<std::vector<double>>> mail_;
};

}  // namespace slipflow::transport
