#pragma once
/// \file shm_comm.hpp
/// ShmComm — same-host Communicator over mmap'd single-producer/
/// single-consumer ring buffers, the zero-copy fast path for the
/// launcher's workers when every rank shares a machine.
///
/// Topology: one ring file per *directed* peer pair
/// (`DIR/ring_<src>to<dst>.shm`). The consumer rank creates and owns
/// its inbound rings; the producer opens them by path, retrying until
/// the header's magic word and session tag match — so stale segments
/// left by a crashed earlier launch are never mistaken for live ones.
/// Each ring is a classic SPSC byte ring: a monotonic `head` counter
/// (bytes produced, advanced with release stores by the producer) and a
/// monotonic `tail` counter (bytes consumed, advanced with release
/// stores by the consumer). `send` serializes its tagged frame directly
/// into the mapped ring — no intermediate buffer, no kernel copy — and
/// the consumer parses frames in place; `try_recv_view` goes further
/// and hands out a span pointing into the mapped payload itself.
///
/// Semantics match SocketComm exactly (same frame codec, same mailbox
/// demultiplexing, same eager-send contract — a full ring spills to a
/// local outbox instead of blocking, so the halo pattern stays
/// deadlock-free), and collectives delegate to the shared binomial
/// trees in collectives.hpp, so results are byte-identical to both
/// SocketComm and ThreadComm. Failure surfaces are also identical: a
/// bounded recv throws comm_timeout naming the pending (src, tag), a
/// peer that tore down cleanly flips the ring's closed flag and
/// surfaces as the same named comm_error, heartbeats report to the
/// launcher's monitor socket, and the deterministic fault-injection
/// layer (kill/stop at phase K, drop, delay, throttle) is shared.
///
/// Frames larger than half a ring are split into fragments
/// (kFrameFlagMoreFragments) so any message fits; waits are
/// spin-then-futex: a bounded yield loop covers the halo exchange's
/// microsecond latencies, and only when that comes up empty does the
/// consumer arm a per-ring waiting flag and sleep in futex(2) on the
/// ring's head word, so an idle rank costs no CPU until its producer
/// commits (which issues FUTEX_WAKE exactly when the flag is armed).

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "transport/communicator.hpp"
#include "transport/fault.hpp"

namespace slipflow::transport {

class HeartbeatSender;  // heartbeat.hpp

/// Transport-level counters of one endpoint (published as `shm/*`).
struct ShmStats {
  long long bytes_sent = 0;      ///< ring bytes produced (headers incl.)
  long long bytes_received = 0;  ///< ring bytes consumed
  long long messages_sent = 0;
  long long messages_received = 0;
  long long heartbeats_sent = 0;
  long long frames_dropped = 0;  ///< by fault injection
  /// Frames that found the ring full and took the local-outbox detour
  /// (the only path that copies); nonzero means the ring is undersized
  /// for the traffic pattern.
  long long spilled_frames = 0;
  long long spilled_bytes = 0;
  double recv_wait_seconds = 0.0;
  double throttle_wait_seconds = 0.0;
  /// Times a blocking wait exhausted its yield budget and parked in
  /// futex(2) on a ring's head word (zero on hosts without futex).
  long long futex_waits = 0;
};

struct ShmCommConfig {
  int rank = 0;
  int nranks = 1;
  /// Directory holding the ring segments; all ranks must agree. May be
  /// empty only for nranks == 1.
  std::string dir;
  CommOptions comm;
  /// Bound on waiting for peers' ring segments to appear (seconds).
  double connect_timeout = 10.0;
  /// Data capacity of each directed ring in bytes (rounded up to 8).
  std::size_t ring_bytes = std::size_t{1} << 20;
  /// Launch-wide session tag; a producer only accepts a ring whose
  /// header carries this exact tag. All ranks must agree (the launcher
  /// passes one via --shm-session).
  std::uint64_t session = 0;
  /// Launcher monitor socket; empty = no heartbeat thread.
  std::string heartbeat_path;
  double heartbeat_interval = 0.25;
  FaultInjection fault;
  /// When set, publish_stats() writes the endpoint's counters into this
  /// registry's shard `rank` under `shm/<name>`.
  obs::MetricsRegistry* metrics = nullptr;
};

class ShmComm final : public Communicator {
 public:
  /// Creates this rank's inbound rings, opens every peer's (blocking,
  /// bounded by connect_timeout), and starts the heartbeat thread when
  /// configured.
  explicit ShmComm(ShmCommConfig cfg);
  /// Drains pending spilled sends (best effort, bounded), marks every
  /// ring closed, unmaps, and unlinks the inbound segments. Never
  /// throws.
  ~ShmComm() override;

  ShmComm(const ShmComm&) = delete;
  ShmComm& operator=(const ShmComm&) = delete;

  int rank() const override { return cfg_.rank; }
  int size() const override { return cfg_.nranks; }

  void send(int dest, int tag, std::span<const double> data) override;
  std::vector<double> recv(int src, int tag) override;
  /// test() drives one nonblocking progress pass (drain inbound rings,
  /// retry spilled sends); wait() delegates to recv() and inherits its
  /// timeout/closed diagnostics.
  RecvHandlePtr irecv(int src, int tag) override;
  void barrier() override;
  std::vector<double> allgather(std::span<const double> mine) override;
  using Communicator::allreduce_sum;  // the vector overload
  double allreduce_sum(double x) override;
  double allreduce_max(double x) override;
  void note_progress(long long phase) override;

  /// True zero-copy receive: if the oldest unconsumed frame on the ring
  /// from `src` matches `tag` (and nothing for that channel is already
  /// buffered in the mailbox), returns a span pointing directly into
  /// the mapped ring payload. The ring position is held until
  /// release_view(); exactly one view may be active at a time. Returns
  /// nullopt when no matching frame is at the front — fall back to
  /// recv()/irecv().
  std::optional<std::span<const double>> try_recv_view(int src, int tag);
  /// Consume the frame behind the active view (no-op without one).
  void release_view();

  /// Counter snapshot (heartbeat count folded in from its thread).
  ShmStats stats() const;
  /// Write the snapshot into cfg.metrics (shard = rank) as `shm/*`
  /// counters; no-op without a registry. Call once, after the run.
  void publish_stats();

  const std::string& dir() const { return cfg_.dir; }

 private:
  class Handle;  // RecvHandle over the mailbox + progress engine

  struct Ring {
    std::byte* base = nullptr;  ///< mmap base (header + data)
    std::size_t map_len = 0;
    std::uint64_t cap = 0;      ///< data bytes
    std::string path;
    /// Producer: head value (bytes produced, cached — only we write it).
    /// Consumer: tail value (bytes consumed, cached).
    std::uint64_t pos = 0;
  };

  /// In-flight fragment reassembly for one inbound ring.
  struct Partial {
    bool active = false;
    int tag = 0;
    std::vector<double> data;
  };

  void create_inbound_rings();
  void open_outbound_rings();
  /// Constructor rendezvous: block until every peer has mapped this
  /// rank's inbound rings, which makes the destructor's unlink safe.
  void wait_producers_attached();
  /// Claim `frame_bytes` contiguous bytes in the ring (writing a pad
  /// frame / applying the implicit end-skip as needed); returns nullptr
  /// without blocking when the ring lacks space. `advance` is the total
  /// head advance (pad included) to pass to ring_commit.
  std::byte* ring_reserve(Ring& r, std::uint64_t frame_bytes,
                          std::uint64_t& advance);
  /// Publish bytes written after ring_reserve (release-store of head).
  void ring_commit(Ring& r, std::uint64_t advance);
  /// Serialize one frame into the outbound ring to `dest` if it fits;
  /// returns false (without blocking) when the ring lacks space.
  bool try_append(int dest, std::uint16_t flags, int tag,
                  std::span<const double> data);
  bool try_append_raw(int dest, std::span<const std::byte> frame);
  /// Fragment + append or spill one logical message (fault-free path).
  void enqueue_data(int dest, int tag, std::span<const double> data);
  /// Retry spilled frames for one peer in FIFO order; true if any moved.
  bool drain_outbox(int dest);
  /// Parse every complete frame off the inbound ring from `src` into
  /// the mailbox (honoring an active zero-copy view); true if any moved.
  bool drain_ring(int src);
  /// One bounded step of the progress engine: drain all inbound rings
  /// and retry every spilled outbox; waits (spin-then-futex) when
  /// nothing moved and max_wait_seconds > 0. `src_hint` names the ring
  /// the caller is blocked on — the only ring worth a futex sleep; -1
  /// (no hint, or spilled sends still pending) keeps the waiter in the
  /// polling loop so outbox retries are never delayed by a sleep.
  void progress(double max_wait_seconds, int src_hint = -1);
  /// Park in futex(2) on the inbound ring from `src` until its producer
  /// commits (or `max_wait_seconds` passes); false when the host has no
  /// futex and the caller should fall back to a timed sleep.
  bool futex_wait_ring(int src, double max_wait_seconds);
  bool try_pop(int src, int tag, std::vector<double>& out);
  void throttle(std::size_t bytes);
  bool peer_gone(int src) const;  ///< producer of inbound ring closed?
  [[noreturn]] void throw_closed(int src, int tag) const;

  ShmCommConfig cfg_;
  std::vector<Ring> in_;   ///< inbound ring from each rank (self unused)
  std::vector<Ring> out_;  ///< outbound ring to each rank (self unused)
  std::vector<Partial> partial_;  ///< per-src fragment reassembly
  std::vector<std::deque<std::vector<std::byte>>> outbox_;  ///< spill, per dest
  std::map<std::pair<int, int>, std::deque<std::vector<double>>> mail_;
  ShmStats stats_;
  /// Yields burned in progress() before conceding a sleep; raised on an
  /// oversubscribed host (ranks > cores), where each yield donates the
  /// core to the peer being waited on and the sleep cliff costs more
  /// than the halo round-trip.
  int spin_limit_ = 256;
  double throttle_tokens_ = 0.0;
  double throttle_last_ = 0.0;
  int drop_remaining_ = 0;
  int view_src_ = -1;               ///< rank of the active view, -1 = none
  std::uint64_t view_advance_ = 0;  ///< tail advance owed on release

  std::unique_ptr<HeartbeatSender> hb_;
};

/// Can `dir` host mmap'd ring segments? (Probe: create, map shared,
/// write, read back.) The launcher's "auto" transport resolves to shm
/// exactly when this is true — deterministically identical on every
/// rank, since they probe the same filesystem.
bool shm_dir_usable(const std::string& dir);

/// In-process harness mirroring run_ranks() for the shm backend: runs
/// `fn` on `nranks` threads, each with its own ShmComm endpoint over a
/// shared ring directory (a fresh mkdtemp when `dir` is empty, removed
/// after). A rank that throws tears its endpoint down, which unblocks
/// peers with named closed-ring errors; the first failure by rank is
/// rethrown. Thread-based on purpose: it runs under ThreadSanitizer,
/// which cannot follow forked children.
struct ShmRunOptions {
  CommOptions comm;
  double connect_timeout = 10.0;
  /// Wall-clock bound for the forked variant (seconds).
  double wall_timeout = 60.0;
  std::string dir;
  std::size_t ring_bytes = std::size_t{1} << 20;
  /// Optional per-rank fault injection. The threaded harness forbids
  /// kill/stop faults (they would take down the whole process); use
  /// run_ranks_shm_forked for those.
  std::function<FaultInjection(int rank)> faults;
};

void run_ranks_shm(int nranks, const std::function<void(Communicator&)>& fn,
                   const ShmRunOptions& opts = {});

/// Forked sibling of run_ranks_shm for fault tests that kill or stop a
/// real process (same supervision and diagnostics as run_ranks_sockets).
void run_ranks_shm_forked(int nranks,
                          const std::function<void(Communicator&)>& fn,
                          const ShmRunOptions& opts = {});

}  // namespace slipflow::transport
