#include "transport/fork_harness.hpp"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include "transport/fdio.hpp"

namespace slipflow::transport {

void run_ranks_forked(int nranks, const std::function<void(int rank)>& body,
                      const ForkRunOptions& opts) {
  SLIPFLOW_REQUIRE(nranks >= 1);
  SLIPFLOW_REQUIRE(body != nullptr);
  using fdio::mono_now;
  using fdio::throw_errno;

  struct Child {
    pid_t pid = -1;
    int err_fd = -1;
    bool done = false;
    int status = 0;
    std::string err;
  };
  std::vector<Child> children(static_cast<std::size_t>(nranks));

  // Parent-side buffered stdio must not leak duplicated output into the
  // children.
  std::fflush(stdout);
  std::fflush(stderr);

  for (int r = 0; r < nranks; ++r) {
    int pipefd[2];
    if (::pipe(pipefd) < 0) throw_errno("pipe");
    const pid_t pid = ::fork();
    if (pid < 0) throw_errno("fork");
    if (pid == 0) {
      // --- child: run the rank, report failure via exit code + stderr.
      ::close(pipefd[0]);
      ::dup2(pipefd[1], 2);
      ::close(pipefd[1]);
      int code = 0;
      try {
        body(r);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "rank %d: %s\n", r, e.what());
        code = 3;
      } catch (...) {
        std::fprintf(stderr, "rank %d: unknown exception\n", r);
        code = 3;
      }
      std::fflush(nullptr);
      ::_exit(code);
    }
    ::close(pipefd[1]);
    fdio::set_nonblocking(pipefd[0]);
    children[static_cast<std::size_t>(r)] = Child{pid, pipefd[0], false, 0, {}};
  }

  const double deadline = mono_now() + opts.wall_timeout;
  bool timed_out = false;
  auto drain_err = [&children] {
    char buf[4096];
    for (Child& c : children) {
      if (c.err_fd < 0) continue;
      for (;;) {
        const ssize_t n = ::read(c.err_fd, buf, sizeof(buf));
        if (n > 0) {
          c.err.append(buf, static_cast<std::size_t>(n));
          continue;
        }
        if (n == 0) {
          ::close(c.err_fd);
          c.err_fd = -1;
        }
        break;
      }
    }
  };

  int running = nranks;
  while (running > 0) {
    drain_err();
    for (Child& c : children) {
      if (c.done) continue;
      int status = 0;
      const pid_t w = ::waitpid(c.pid, &status, WNOHANG);
      if (w == c.pid) {
        c.done = true;
        c.status = status;
        --running;
      }
    }
    if (running == 0) break;
    if (mono_now() >= deadline) {
      timed_out = true;
      for (Child& c : children)
        if (!c.done) ::kill(c.pid, SIGKILL);
      for (Child& c : children) {
        if (c.done) continue;
        ::waitpid(c.pid, &c.status, 0);
        c.done = true;
      }
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  drain_err();
  for (Child& c : children)
    if (c.err_fd >= 0) ::close(c.err_fd);

  std::ostringstream diag;
  bool failed = timed_out;
  for (int r = 0; r < nranks; ++r) {
    const Child& c = children[static_cast<std::size_t>(r)];
    if (WIFSIGNALED(c.status))
      diag << "rank " << r << " killed by signal " << WTERMSIG(c.status)
           << "\n";
    else if (WIFEXITED(c.status) && WEXITSTATUS(c.status) != 0)
      diag << "rank " << r << " exited with code " << WEXITSTATUS(c.status)
           << "\n";
    else
      continue;
    failed = true;
  }
  if (!failed) return;
  for (int r = 0; r < nranks; ++r) {
    const Child& c = children[static_cast<std::size_t>(r)];
    if (!c.err.empty()) diag << c.err;
  }
  if (timed_out)
    throw comm_timeout(opts.who + ": wall timeout after " +
                       std::to_string(opts.wall_timeout) + "s\n" + diag.str());
  throw comm_error(opts.who + ": rank failure\n" + diag.str());
}

}  // namespace slipflow::transport
