#pragma once
/// \file launcher.hpp
/// Process launcher for the socket transport: forks and execs N worker
/// processes (normally the `slipflow_worker` binary), wires them to a
/// shared socket directory, and supervises the run.
///
/// Supervision turns the three silent failure modes of a real cluster
/// run into named, bounded diagnostics:
///   - a worker that dies (crash, SIGKILL fault injection) is reported as
///     "rank R killed by signal S" the moment it is reaped;
///   - a worker that freezes (SIGSTOP, livelock) is caught by heartbeat
///     silence: every worker beats (rank, phase) on the launcher's
///     monitor socket, and a beat older than `heartbeat_grace` fails the
///     run naming the stalled rank and its last reported phase;
///   - a run that stops making progress collectively is bounded by
///     `wall_clock_timeout`.
/// On any failure every surviving worker is SIGKILLed before returning,
/// so a failed launch never leaks processes.

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace slipflow::transport {

struct LaunchConfig {
  int ranks = 1;
  /// argv of the worker binary (argv[0] = executable path). The launcher
  /// appends, per rank:
  ///   --rank=R --ranks=N --socket-dir=DIR
  ///   --heartbeat-sock=DIR/monitor.sock --heartbeat-interval=S
  /// followed by extra_args[R], so per-rank fault flags go there.
  std::vector<std::string> worker_command;
  /// Socket directory shared by the workers; empty = fresh mkdtemp under
  /// $TMPDIR (falling back to /tmp), removed when the launch returns.
  std::string dir;
  /// Transport the workers should use: "" = leave the worker's default
  /// (socket), "socket", "shm", or "auto" (shm when the shared dir
  /// supports mmap, else socket). When set, the launcher appends
  /// --transport=<t>; for "shm"/"auto" it also appends a fresh
  /// --shm-session=<tag> so stale ring segments from a crashed earlier
  /// launch can never be mistaken for this run's.
  std::string transport;
  /// Ring capacity per directed peer pair in bytes (0 = worker default).
  /// Only meaningful with transport "shm"/"auto".
  long long shm_ring_bytes = 0;
  double heartbeat_interval = 0.25;
  /// A worker whose latest beat is older than this fails the run
  /// (seconds). <= 0 disables heartbeat supervision.
  double heartbeat_grace = 5.0;
  double wall_clock_timeout = 120.0;
  /// Per-rank extra worker arguments (fault injection etc.).
  std::map<int, std::vector<std::string>> extra_args;
  /// Called from the supervision loop whenever a worker's reported
  /// heartbeat phase advances. Runs on the launching thread, so it may
  /// not block; the campaign server uses it to stream job progress to
  /// the submitting client while launch_workers is still running.
  std::function<void(int rank, long long phase)> on_progress;
  /// Called once per supervision tick (every ~50 ms) while the run is
  /// alive — the hook for polling job side channels (result fragment
  /// directories) the launcher itself knows nothing about.
  std::function<void()> on_tick;
};

struct LaunchResult {
  bool ok = false;
  /// First rank blamed for the failure, -1 if none identified.
  int failed_rank = -1;
  /// Human-readable failure description plus collected worker stderr.
  std::string diagnostic;
  double elapsed_seconds = 0.0;
  /// Last phase each rank reported via heartbeat (-1 = never beat).
  std::vector<long long> last_phase;
};

/// Run the workers to completion (all exit 0) or to the first failure.
/// Does not throw on worker failure — that is the result — only on
/// launcher-side setup errors (fork/socket failures).
LaunchResult launch_workers(const LaunchConfig& cfg);

}  // namespace slipflow::transport
