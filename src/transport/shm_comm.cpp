#include "transport/shm_comm.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#endif

#include <atomic>
#include <bit>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <limits>
#include <thread>

#include "transport/collectives.hpp"
#include "transport/fdio.hpp"
#include "transport/fork_harness.hpp"
#include "transport/frame.hpp"
#include "transport/heartbeat.hpp"
#include "transport/tempdir.hpp"

namespace slipflow::transport {

using fdio::mono_now;
using fdio::throw_errno;

namespace {

// --- ring segment layout -------------------------------------------------
// [0]   u64 magic     — stored LAST (release) by the creating consumer,
//                       so a mapped segment with the magic set is fully
//                       initialized
// [8]   u64 session   — launch-wide tag; rejects stale segments
// [16]  u64 capacity  — data bytes (producer validates against its own)
// [64]  u64 head      — bytes produced, monotonic (producer-written)
// [128] u64 tail      — bytes consumed, monotonic (consumer-written)
// [136] u32 consumer_waiting — armed by the consumer just before it
//                       parks in futex(2) on the head word; the
//                       producer's commit checks it (after a seq_cst
//                       fence pairing with the waiter's) and issues
//                       FUTEX_WAKE only when set. Lives on the tail's
//                       cache line: both words are consumer-written,
//                       producer-read.
// [192] u32 producer_closed / [196] u32 consumer_closed
// [200] u32 producer_attached — set once the producer has mapped the
//                       segment; the consumer's constructor waits for it
//                       (the rendezvous that makes the destructor's
//                       unlink safe: an mmap outlives the directory entry)
// [256] data[capacity]
// head/tail/closed live on their own cache lines to avoid false sharing
// between the two sides.
constexpr std::uint64_t kShmMagic = 0x534C502E53484Dull;  // "SLP.SHM"
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffSession = 8;
constexpr std::size_t kOffCapacity = 16;
constexpr std::size_t kOffHead = 64;
constexpr std::size_t kOffTail = 128;
constexpr std::size_t kOffConsumerWaiting = 136;
constexpr std::size_t kOffProducerClosed = 192;
constexpr std::size_t kOffConsumerClosed = 196;
constexpr std::size_t kOffProducerAttached = 200;
constexpr std::size_t kRingDataOffset = 256;

std::atomic_ref<std::uint64_t> a64(std::byte* base, std::size_t off) {
  return std::atomic_ref<std::uint64_t>(
      *reinterpret_cast<std::uint64_t*>(base + off));
}

std::atomic_ref<std::uint32_t> a32(std::byte* base, std::size_t off) {
  return std::atomic_ref<std::uint32_t>(
      *reinterpret_cast<std::uint32_t*>(base + off));
}

std::string ring_path(const std::string& dir, int src, int dst) {
  return dir + "/ring_" + std::to_string(src) + "to" + std::to_string(dst) +
         ".shm";
}

#if defined(__linux__)
// The futex word is the 32 low-order bits of the ring's u64 head
// counter: every commit advances head by a nonzero amount far below
// 2^32, so the low word changes on every publish and FUTEX_WAIT's
// expected-value check catches any commit that lands between the
// waiter's last drain and its sleep.
std::uint32_t* head_futex_word(std::byte* base) {
  const std::size_t off =
      std::endian::native == std::endian::little ? kOffHead : kOffHead + 4;
  return reinterpret_cast<std::uint32_t*>(base + off);
}

// No glibc wrapper for futex(2); the segments are shared across forked
// processes, so the non-PRIVATE opcodes are required.
long futex_call(std::uint32_t* word, int op, std::uint32_t val,
                const struct timespec* timeout) {
  return ::syscall(SYS_futex, word, op, val, timeout, nullptr, 0);
}
#endif

}  // namespace

ShmComm::ShmComm(ShmCommConfig cfg) : cfg_(std::move(cfg)) {
  SLIPFLOW_REQUIRE(cfg_.nranks >= 1);
  SLIPFLOW_REQUIRE(cfg_.rank >= 0 && cfg_.rank < cfg_.nranks);
  SLIPFLOW_REQUIRE_MSG(cfg_.nranks == 1 || !cfg_.dir.empty(),
                       "ShmComm needs a segment directory for > 1 rank");
  SLIPFLOW_REQUIRE_MSG(cfg_.ring_bytes >= 4096,
                       "ShmComm ring_bytes must be at least 4096");
  cfg_.ring_bytes = (cfg_.ring_bytes + 7u) & ~std::size_t{7};
  drop_remaining_ = cfg_.fault.drop_dest == -2 ? 0 : cfg_.fault.drop_count;
  // On an oversubscribed host (more ranks than cores) each yield donates
  // the core to the peer we are waiting on, so stay in the yield loop
  // much longer before conceding a real sleep — the 200us sleep cliff
  // costs more than the halo round-trip itself.
  spin_limit_ =
      cfg_.nranks <= static_cast<int>(std::thread::hardware_concurrency())
          ? 256
          : 16384;
  throttle_last_ = mono_now();
  // 0.1 s of burst allowance; see FaultInjection::throttle_bytes_per_sec.
  throttle_tokens_ = 0.1 * cfg_.fault.throttle_bytes_per_sec;
  in_.resize(static_cast<std::size_t>(cfg_.nranks));
  out_.resize(static_cast<std::size_t>(cfg_.nranks));
  partial_.resize(static_cast<std::size_t>(cfg_.nranks));
  outbox_.resize(static_cast<std::size_t>(cfg_.nranks));
  // Heartbeats start before ring discovery so a rank stuck waiting for a
  // peer's segment is already visible to the launcher's monitor.
  if (!cfg_.heartbeat_path.empty())
    hb_ = std::make_unique<HeartbeatSender>(cfg_.rank, cfg_.heartbeat_path,
                                            cfg_.heartbeat_interval,
                                            cfg_.connect_timeout);
  if (cfg_.nranks > 1) {
    create_inbound_rings();
    open_outbound_rings();
    wait_producers_attached();
  }
}

/// The construction rendezvous (the shm analogue of SocketComm's accept
/// loop): block until every peer has mapped this rank's inbound rings.
/// After this, no peer still needs our segments' directory entries —
/// their mmaps outlive the unlink — so teardown can remove them no
/// matter how early this rank finishes relative to its peers.
void ShmComm::wait_producers_attached() {
  const double deadline = mono_now() + cfg_.connect_timeout;
  for (int src = 0; src < cfg_.nranks; ++src) {
    if (src == cfg_.rank) continue;
    Ring& r = in_[static_cast<std::size_t>(src)];
    while (a32(r.base, kOffProducerAttached)
               .load(std::memory_order_acquire) == 0) {
      if (mono_now() >= deadline)
        throw comm_timeout("rank " + std::to_string(cfg_.rank) + ": rank " +
                           std::to_string(src) + " never attached to " +
                           r.path + " within " +
                           std::to_string(cfg_.connect_timeout) + "s");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
}

void ShmComm::create_inbound_rings() {
  const std::size_t len = kRingDataOffset + cfg_.ring_bytes;
  for (int src = 0; src < cfg_.nranks; ++src) {
    if (src == cfg_.rank) continue;
    Ring& r = in_[static_cast<std::size_t>(src)];
    r.path = ring_path(cfg_.dir, src, cfg_.rank);
    // unlink-then-create: a stale segment from a crashed earlier run
    // keeps its old inode (and old session tag), so a producer that
    // mapped it keeps retrying by path until it sees this fresh one.
    ::unlink(r.path.c_str());
    const int fd = ::open(r.path.c_str(), O_CREAT | O_EXCL | O_RDWR | O_CLOEXEC,
                          0600);
    if (fd < 0) throw_errno("open(create " + r.path + ")");
    if (::ftruncate(fd, static_cast<off_t>(len)) < 0) {
      const int err = errno;
      ::close(fd);
      ::unlink(r.path.c_str());
      errno = err;
      throw_errno("ftruncate(" + r.path + ")");
    }
    void* base =
        ::mmap(nullptr, len, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
      ::unlink(r.path.c_str());
      throw_errno("mmap(" + r.path + ")");
    }
    r.base = static_cast<std::byte*>(base);
    r.map_len = len;
    r.cap = cfg_.ring_bytes;
    r.pos = 0;
    // Fresh pages are zero; publish session/capacity before the magic so
    // a producer that observes the magic (acquire) sees a complete header.
    a64(r.base, kOffSession).store(cfg_.session, std::memory_order_relaxed);
    a64(r.base, kOffCapacity)
        .store(cfg_.ring_bytes, std::memory_order_relaxed);
    a64(r.base, kOffMagic).store(kShmMagic, std::memory_order_release);
  }
}

void ShmComm::open_outbound_rings() {
  const std::size_t len = kRingDataOffset + cfg_.ring_bytes;
  const double deadline = mono_now() + cfg_.connect_timeout;
  for (int dst = 0; dst < cfg_.nranks; ++dst) {
    if (dst == cfg_.rank) continue;
    Ring& r = out_[static_cast<std::size_t>(dst)];
    r.path = ring_path(cfg_.dir, cfg_.rank, dst);
    for (;;) {
      const int fd = ::open(r.path.c_str(), O_RDWR | O_CLOEXEC);
      if (fd >= 0) {
        struct stat st{};
        const bool sized =
            ::fstat(fd, &st) == 0 && st.st_size == static_cast<off_t>(len);
        void* base = sized ? ::mmap(nullptr, len, PROT_READ | PROT_WRITE,
                                    MAP_SHARED, fd, 0)
                           : MAP_FAILED;
        ::close(fd);
        if (base != MAP_FAILED) {
          std::byte* b = static_cast<std::byte*>(base);
          if (a64(b, kOffMagic).load(std::memory_order_acquire) == kShmMagic &&
              a64(b, kOffSession).load(std::memory_order_relaxed) ==
                  cfg_.session &&
              a64(b, kOffCapacity).load(std::memory_order_relaxed) ==
                  cfg_.ring_bytes) {
            r.base = b;
            r.map_len = len;
            r.cap = cfg_.ring_bytes;
            r.pos = 0;
            a32(b, kOffProducerAttached).store(1, std::memory_order_release);
            break;
          }
          ::munmap(base, len);  // stale or still-initializing — retry
        }
      }
      if (mono_now() >= deadline)
        throw comm_timeout("rank " + std::to_string(cfg_.rank) +
                           ": shm ring " + r.path +
                           " not available within " +
                           std::to_string(cfg_.connect_timeout) + "s");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
}

ShmComm::~ShmComm() {
  hb_.reset();
  // Best-effort drain of spilled sends so a rank that finishes early
  // does not strand messages its peers still want (eager-send
  // contract); bounded so teardown can never hang.
  try {
    const double deadline = mono_now() + 5.0;
    for (;;) {
      bool pending = false;
      for (int d = 0; d < cfg_.nranks; ++d) {
        if (d == cfg_.rank) continue;
        drain_outbox(d);
        if (!outbox_[static_cast<std::size_t>(d)].empty()) pending = true;
      }
      if (!pending || mono_now() >= deadline) break;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  } catch (...) {
    // teardown must not throw
  }
  for (int p = 0; p < cfg_.nranks; ++p) {
    Ring& o = out_[static_cast<std::size_t>(p)];
    if (o.base != nullptr) {
      a32(o.base, kOffProducerClosed).store(1, std::memory_order_release);
#if defined(__linux__)
      // A consumer parked on this ring must see the closed flag rather
      // than sleep out its timeout; same fence pairing as ring_commit.
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (a32(o.base, kOffConsumerWaiting).load(std::memory_order_relaxed) !=
          0)
        futex_call(head_futex_word(o.base), FUTEX_WAKE, INT_MAX, nullptr);
#endif
      ::munmap(o.base, o.map_len);
      o.base = nullptr;
    }
    Ring& i = in_[static_cast<std::size_t>(p)];
    if (i.base != nullptr) {
      a32(i.base, kOffConsumerClosed).store(1, std::memory_order_release);
      ::munmap(i.base, i.map_len);
      i.base = nullptr;
      ::unlink(i.path.c_str());
    }
  }
}

void ShmComm::throttle(std::size_t bytes) {
  const double bps = cfg_.fault.throttle_bytes_per_sec;
  if (bps <= 0.0) return;
  const double now = mono_now();
  throttle_tokens_ = std::min(0.1 * bps,
                              throttle_tokens_ + (now - throttle_last_) * bps);
  throttle_last_ = now;
  const double need = static_cast<double>(bytes);
  if (need > throttle_tokens_) {
    const double wait = (need - throttle_tokens_) / bps;
    stats_.throttle_wait_seconds += wait;
    std::this_thread::sleep_for(std::chrono::duration<double>(wait));
    throttle_last_ = mono_now();
  }
  throttle_tokens_ -= need;
}

std::byte* ShmComm::ring_reserve(Ring& r, std::uint64_t frame_bytes,
                                 std::uint64_t& advance) {
  const std::uint64_t h = r.pos;
  const std::uint64_t end = r.cap - (h % r.cap);
  // A frame never wraps: when the space to the ring's end is too small,
  // fill it — with an explicit kPad frame when a header fits, otherwise
  // by the implicit skip rule the consumer applies symmetrically (both
  // sides know end-of-ring remainders under one header are dead space).
  const std::uint64_t pad = end < frame_bytes ? end : 0;
  const std::uint64_t t =
      a64(r.base, kOffTail).load(std::memory_order_acquire);
  if (r.cap - (h - t) < pad + frame_bytes) return nullptr;
  if (pad >= kFrameHeaderBytes) {
    FrameHeader ph;
    ph.kind = FrameKind::kPad;
    ph.src = cfg_.rank;
    ph.count = (pad - kFrameHeaderBytes) / sizeof(double);
    const auto pb = encode_frame_header(ph);
    std::memcpy(r.base + kRingDataOffset + (h % r.cap), pb.data(), pb.size());
  }
  advance = pad + frame_bytes;
  return r.base + kRingDataOffset + ((h + pad) % r.cap);
}

void ShmComm::ring_commit(Ring& r, std::uint64_t advance) {
  r.pos += advance;
  a64(r.base, kOffHead).store(r.pos, std::memory_order_release);
  stats_.bytes_sent += static_cast<long long>(advance);
#if defined(__linux__)
  // Publish-then-check against the waiter's arm-then-recheck: the
  // seq_cst fences on both sides guarantee that either this side sees
  // consumer_waiting set (and wakes) or the consumer's recheck sees the
  // new head (and skips the sleep) — a lost wake is impossible.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  auto waiting = a32(r.base, kOffConsumerWaiting);
  if (waiting.load(std::memory_order_relaxed) != 0) {
    waiting.store(0, std::memory_order_relaxed);
    futex_call(head_futex_word(r.base), FUTEX_WAKE, INT_MAX, nullptr);
  }
#endif
}

bool ShmComm::try_append(int dest, std::uint16_t flags, int tag,
                         std::span<const double> data) {
  Ring& r = out_[static_cast<std::size_t>(dest)];
  const std::uint64_t S = kFrameHeaderBytes + data.size() * sizeof(double);
  std::uint64_t advance = 0;
  std::byte* at = ring_reserve(r, S, advance);
  if (at == nullptr) return false;
  FrameHeader h;
  h.kind = FrameKind::kData;
  h.flags = flags;
  h.src = cfg_.rank;
  h.tag = tag;
  h.count = data.size();
  const auto hb = encode_frame_header(h);
  std::memcpy(at, hb.data(), hb.size());
  if (!data.empty())
    // The payload's only copy: caller's buffer -> mapped ring.
    std::memcpy(at + kFrameHeaderBytes, data.data(),
                data.size() * sizeof(double));
  ring_commit(r, advance);
  return true;
}

bool ShmComm::try_append_raw(int dest, std::span<const std::byte> frame) {
  Ring& r = out_[static_cast<std::size_t>(dest)];
  std::uint64_t advance = 0;
  std::byte* at = ring_reserve(r, frame.size(), advance);
  if (at == nullptr) return false;
  std::memcpy(at, frame.data(), frame.size());
  ring_commit(r, advance);
  return true;
}

void ShmComm::enqueue_data(int dest, int tag, std::span<const double> data) {
  Ring& r = out_[static_cast<std::size_t>(dest)];
  if (a32(r.base, kOffConsumerClosed).load(std::memory_order_acquire) != 0)
    throw comm_error("rank " + std::to_string(cfg_.rank) + ": send to rank " +
                     std::to_string(dest) + " failed: connection closed");
  // Fragments are bounded by half a ring so any message is deliverable
  // regardless of capacity; all but the last carry the more-fragments
  // flag and reassemble on the receiver.
  const std::size_t max_frag =
      (static_cast<std::size_t>(r.cap) / 2 - kFrameHeaderBytes) /
      sizeof(double);
  auto& spill = outbox_[static_cast<std::size_t>(dest)];
  std::size_t off = 0;
  do {
    const std::size_t n = std::min(data.size() - off, max_frag);
    const bool more = off + n < data.size();
    const std::span<const double> frag = data.subspan(off, n);
    const std::uint16_t flags = more ? kFrameFlagMoreFragments : 0;
    throttle(kFrameHeaderBytes + n * sizeof(double));
    // FIFO: once anything is spilled, everything behind it spills too.
    if (!spill.empty() || !try_append(dest, flags, tag, frag)) {
      FrameHeader h;
      h.kind = FrameKind::kData;
      h.flags = flags;
      h.src = cfg_.rank;
      h.tag = tag;
      h.count = frag.size();
      const auto hb = encode_frame_header(h);
      std::vector<std::byte> bytes(hb.size() + frag.size() * sizeof(double));
      std::memcpy(bytes.data(), hb.data(), hb.size());
      if (!frag.empty())
        std::memcpy(bytes.data() + hb.size(), frag.data(),
                    frag.size() * sizeof(double));
      ++stats_.spilled_frames;
      stats_.spilled_bytes += static_cast<long long>(bytes.size());
      spill.push_back(std::move(bytes));
    }
    off += n;
  } while (off < data.size());
}

void ShmComm::send(int dest, int tag, std::span<const double> data) {
  SLIPFLOW_REQUIRE(dest >= 0 && dest < cfg_.nranks);
  if (drop_remaining_ > 0 &&
      (cfg_.fault.drop_dest == -1 || cfg_.fault.drop_dest == dest) &&
      (cfg_.fault.drop_tag == -1 || cfg_.fault.drop_tag == tag)) {
    --drop_remaining_;
    ++stats_.frames_dropped;
    return;
  }
  if (cfg_.fault.send_delay > 0.0)
    std::this_thread::sleep_for(
        std::chrono::duration<double>(cfg_.fault.send_delay));
  ++stats_.messages_sent;
  if (dest == cfg_.rank) {
    mail_[{cfg_.rank, tag}].emplace_back(data.begin(), data.end());
    ++stats_.messages_received;
    return;
  }
  enqueue_data(dest, tag, data);
}

bool ShmComm::drain_outbox(int dest) {
  auto& q = outbox_[static_cast<std::size_t>(dest)];
  if (q.empty()) return false;
  Ring& r = out_[static_cast<std::size_t>(dest)];
  if (a32(r.base, kOffConsumerClosed).load(std::memory_order_acquire) != 0) {
    // The peer is gone; undeliverable output is dropped and the next
    // recv involving this peer reports it (mirrors the socket path).
    q.clear();
    return false;
  }
  bool moved = false;
  while (!q.empty() && try_append_raw(dest, q.front())) {
    q.pop_front();
    moved = true;
  }
  return moved;
}

bool ShmComm::drain_ring(int src) {
  Ring& r = in_[static_cast<std::size_t>(src)];
  if (r.base == nullptr) return false;
  if (view_src_ == src) return false;  // hold position for the active view
  const std::uint64_t h =
      a64(r.base, kOffHead).load(std::memory_order_acquire);
  std::uint64_t t = r.pos;
  bool moved = false;
  while (h - t >= kFrameHeaderBytes) {
    const std::uint64_t end = r.cap - (t % r.cap);
    if (end < kFrameHeaderBytes) {  // implicit end-of-ring skip
      t += end;
      continue;
    }
    std::array<std::byte, kFrameHeaderBytes> hb;
    std::memcpy(hb.data(), r.base + kRingDataOffset + (t % r.cap), hb.size());
    const FrameHeader fh = decode_frame_header(hb);
    const std::uint64_t S = kFrameHeaderBytes + fh.count * sizeof(double);
    if (fh.kind == FrameKind::kPad) {
      t += S;
      continue;
    }
    if (fh.kind != FrameKind::kData || fh.src != src)
      throw comm_error("rank " + std::to_string(cfg_.rank) +
                       ": unexpected frame from rank " + std::to_string(src));
    // A frame never wraps (see ring_reserve), so the payload is
    // contiguous and 8-aligned in the mapping.
    const double* payload = reinterpret_cast<const double*>(
        r.base + kRingDataOffset + (t % r.cap) + kFrameHeaderBytes);
    Partial& pa = partial_[static_cast<std::size_t>(src)];
    if ((fh.flags & kFrameFlagMoreFragments) != 0) {
      if (!pa.active) {
        pa.active = true;
        pa.tag = fh.tag;
        pa.data.clear();
      } else if (pa.tag != fh.tag) {
        throw comm_error("rank " + std::to_string(cfg_.rank) +
                         ": interleaved fragments from rank " +
                         std::to_string(src));
      }
      pa.data.insert(pa.data.end(), payload, payload + fh.count);
    } else if (pa.active) {
      if (pa.tag != fh.tag)
        throw comm_error("rank " + std::to_string(cfg_.rank) +
                         ": interleaved fragments from rank " +
                         std::to_string(src));
      pa.data.insert(pa.data.end(), payload, payload + fh.count);
      mail_[{src, fh.tag}].push_back(std::move(pa.data));
      pa.active = false;
      pa.data = {};
      ++stats_.messages_received;
    } else {
      mail_[{src, fh.tag}].emplace_back(payload, payload + fh.count);
      ++stats_.messages_received;
    }
    t += S;
    moved = true;
  }
  if (t != r.pos) {
    stats_.bytes_received += static_cast<long long>(t - r.pos);
    r.pos = t;
    a64(r.base, kOffTail).store(t, std::memory_order_release);
  }
  return moved;
}

std::optional<std::span<const double>> ShmComm::try_recv_view(int src,
                                                              int tag) {
  SLIPFLOW_REQUIRE(src >= 0 && src < cfg_.nranks && src != cfg_.rank);
  SLIPFLOW_REQUIRE_MSG(view_src_ == -1,
                       "ShmComm: only one zero-copy view may be active");
  const auto it = mail_.find({src, tag});
  if (it != mail_.end() && !it->second.empty()) return std::nullopt;
  Ring& r = in_[static_cast<std::size_t>(src)];
  if (r.base == nullptr) return std::nullopt;
  const std::uint64_t h =
      a64(r.base, kOffHead).load(std::memory_order_acquire);
  std::uint64_t t = r.pos;
  // Consume leading pads/skips — they carry nothing.
  for (;;) {
    if (h - t < kFrameHeaderBytes) break;
    const std::uint64_t end = r.cap - (t % r.cap);
    if (end < kFrameHeaderBytes) {
      t += end;
      continue;
    }
    std::array<std::byte, kFrameHeaderBytes> hb;
    std::memcpy(hb.data(), r.base + kRingDataOffset + (t % r.cap), hb.size());
    const FrameHeader fh = decode_frame_header(hb);
    const std::uint64_t S = kFrameHeaderBytes + fh.count * sizeof(double);
    if (fh.kind == FrameKind::kPad) {
      t += S;
      continue;
    }
    if (t != r.pos) {
      stats_.bytes_received += static_cast<long long>(t - r.pos);
      r.pos = t;
      a64(r.base, kOffTail).store(t, std::memory_order_release);
    }
    if (fh.kind != FrameKind::kData || fh.src != src ||
        fh.tag != tag || (fh.flags & kFrameFlagMoreFragments) != 0 ||
        partial_[static_cast<std::size_t>(src)].active)
      return std::nullopt;  // not viewable — leave it for drain_ring
    view_src_ = src;
    view_advance_ = S;
    const double* payload = reinterpret_cast<const double*>(
        r.base + kRingDataOffset + (t % r.cap) + kFrameHeaderBytes);
    return std::span<const double>(payload, fh.count);
  }
  if (t != r.pos) {
    stats_.bytes_received += static_cast<long long>(t - r.pos);
    r.pos = t;
    a64(r.base, kOffTail).store(t, std::memory_order_release);
  }
  return std::nullopt;
}

void ShmComm::release_view() {
  if (view_src_ < 0) return;
  Ring& r = in_[static_cast<std::size_t>(view_src_)];
  r.pos += view_advance_;
  a64(r.base, kOffTail).store(r.pos, std::memory_order_release);
  stats_.bytes_received += static_cast<long long>(view_advance_);
  ++stats_.messages_received;
  view_src_ = -1;
  view_advance_ = 0;
}

/// Arm the consumer_waiting flag on the inbound ring from `src` and
/// park in FUTEX_WAIT on its head word. The arm-then-recheck sequence
/// (seq_cst fence between) pairs with ring_commit's publish-then-check,
/// so a commit racing with the arm either aborts the sleep here or
/// triggers a wake there. The sleep is additionally bounded (50 ms cap
/// under max_wait_seconds) so fault-injected stalls and missed close
/// edges degrade to a short poll, never a hang.
bool ShmComm::futex_wait_ring(int src, double max_wait_seconds) {
#if defined(__linux__)
  Ring& r = in_[static_cast<std::size_t>(src)];
  if (r.base == nullptr) return false;
  auto waiting = a32(r.base, kOffConsumerWaiting);
  waiting.store(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const std::uint64_t h =
      a64(r.base, kOffHead).load(std::memory_order_acquire);
  if (h != r.pos ||
      a32(r.base, kOffProducerClosed).load(std::memory_order_acquire) != 0) {
    waiting.store(0, std::memory_order_relaxed);
    return true;  // raced with a commit or a close — go drain instead
  }
  const double bound = std::min(max_wait_seconds, 0.05);
  struct timespec ts{};
  ts.tv_nsec = static_cast<long>(std::max(bound, 0.0) * 1e9);
  ++stats_.futex_waits;
  // Expected value = the head low word we just verified; a commit that
  // slips in before the kernel's own recheck makes this return EAGAIN.
  futex_call(head_futex_word(r.base), FUTEX_WAIT,
             static_cast<std::uint32_t>(h), &ts);
  waiting.store(0, std::memory_order_relaxed);
  return true;
#else
  (void)src;
  (void)max_wait_seconds;
  return false;
#endif
}

void ShmComm::progress(double max_wait_seconds, int src_hint) {
  auto pass = [this] {
    bool moved = false;
    for (int p = 0; p < cfg_.nranks; ++p) {
      if (p == cfg_.rank) continue;
      if (drain_outbox(p)) moved = true;
      if (drain_ring(p)) moved = true;
    }
    return moved;
  };
  if (pass() || max_wait_seconds <= 0.0) return;
  // Spin-then-futex: the halo exchange's latencies are microseconds, so
  // burn yields (spin_limit_, tuned in the constructor for the host's
  // core count) before conceding a real sleep. A caller blocked on one
  // specific ring (src_hint) with no spilled sends pending parks in
  // futex(2) and is woken by that producer's next commit — for such
  // waits the yield phase is additionally time-capped (a busy host can
  // stretch each yield to a scheduling quantum, and past a couple of
  // milliseconds the wake-on-commit park is strictly cheaper than more
  // yielding). Everyone else falls back to the short timed sleep so
  // outbox retries keep flowing.
  const double start = mono_now();
  const double deadline = start + max_wait_seconds;
  const double yield_deadline = start + 0.002;
  const bool hinted =
      src_hint >= 0 && src_hint != cfg_.rank && view_src_ == -1;
  int spins = 0;
  for (;;) {
    if (pass()) return;
    const double now = mono_now();
    if (now >= deadline) return;
    bool spill_pending = false;
    for (const auto& q : outbox_)
      if (!q.empty()) {
        spill_pending = true;
        break;
      }
    const bool may_park = hinted && !spill_pending;
    if (++spins < spin_limit_ && !(may_park && now >= yield_deadline)) {
      std::this_thread::yield();
      continue;
    }
    if (!may_park || !futex_wait_ring(src_hint, deadline - now))
      std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

bool ShmComm::peer_gone(int src) const {
  const Ring& r = in_[static_cast<std::size_t>(src)];
  if (r.base == nullptr) return false;
  if (a32(r.base, kOffProducerClosed).load(std::memory_order_acquire) == 0)
    return false;
  // Closed AND fully drained: the producer's final messages still count.
  return a64(r.base, kOffHead).load(std::memory_order_acquire) == r.pos;
}

void ShmComm::throw_closed(int src, int tag) const {
  throw comm_error("rank " + std::to_string(cfg_.rank) +
                   ": connection to rank " + std::to_string(src) +
                   " closed while waiting for (src=" + std::to_string(src) +
                   ", tag=" + std::to_string(tag) + ")");
}

bool ShmComm::try_pop(int src, int tag, std::vector<double>& out) {
  const auto it = mail_.find({src, tag});
  if (it == mail_.end() || it->second.empty()) return false;
  out = std::move(it->second.front());
  it->second.pop_front();
  return true;
}

std::vector<double> ShmComm::recv(int src, int tag) {
  SLIPFLOW_REQUIRE(src >= 0 && src < cfg_.nranks);
  const double t0 = mono_now();
  const double timeout = cfg_.comm.recv_timeout;
  const double deadline =
      timeout > 0.0 ? t0 + timeout : std::numeric_limits<double>::infinity();
  for (;;) {
    std::vector<double> out;
    if (try_pop(src, tag, out)) {
      stats_.recv_wait_seconds += mono_now() - t0;
      return out;
    }
    if (src == cfg_.rank)
      throw comm_error("rank " + std::to_string(cfg_.rank) +
                       ": blocking self-recv with empty mailbox would "
                       "deadlock (tag " + std::to_string(tag) + ")");
    if (peer_gone(src)) throw_closed(src, tag);
    const double now = mono_now();
    if (now >= deadline)
      throw comm_timeout(
          "rank " + std::to_string(cfg_.rank) + ": recv timeout after " +
          std::to_string(timeout) + "s waiting for (src=" +
          std::to_string(src) + ", tag=" + std::to_string(tag) + ")");
    progress(std::min(0.1, deadline - now), src);
  }
}

/// Completion = the matching frame has been drained into the mailbox.
/// test() makes one nonblocking progress pass before giving up, so a
/// rank that only ever calls test() between compute chunks still
/// retries its spilled sends and drains arrivals. A cleanly departed
/// peer surfaces from test() as the same named comm_error a blocking
/// recv would throw; a pending self-receive just stays incomplete (the
/// matching self-send may come later from this same thread).
class ShmComm::Handle final : public RecvHandle {
 public:
  Handle(ShmComm& comm, int src, int tag)
      : comm_(comm), src_(src), tag_(tag) {}

  bool test() override {
    if (done_) return true;
    if (comm_.try_pop(src_, tag_, payload_)) return done_ = true;
    if (src_ != comm_.cfg_.rank) {
      comm_.progress(0.0);
      if (comm_.try_pop(src_, tag_, payload_)) return done_ = true;
      if (comm_.peer_gone(src_)) comm_.throw_closed(src_, tag_);
    }
    return false;
  }

  std::vector<double> wait() override {
    if (!done_) {
      payload_ = comm_.recv(src_, tag_);
      done_ = true;
    }
    return std::move(payload_);
  }

 private:
  ShmComm& comm_;
  const int src_, tag_;
  bool done_ = false;
  std::vector<double> payload_;
};

RecvHandlePtr ShmComm::irecv(int src, int tag) {
  SLIPFLOW_REQUIRE(src >= 0 && src < cfg_.nranks);
  return std::make_unique<Handle>(*this, src, tag);
}

// det-lint: rank-ordered — delegates to binomial_allgather, which
// concatenates contributions by rank index (collectives.hpp).
std::vector<double> ShmComm::allgather(std::span<const double> mine) {
  return binomial_allgather(*this, mine);
}

void ShmComm::barrier() { (void)allgather({}); }

// det-lint: rank-ordered — folds the rank-ordered allgather result
// left to right in rank index order.
double ShmComm::allreduce_sum(double x) {
  const std::vector<double> all = allgather(std::span<const double>(&x, 1));
  double s = 0.0;
  for (double v : all) s += v;
  return s;
}

// det-lint: rank-ordered — max over the rank-ordered allgather.
double ShmComm::allreduce_max(double x) {
  const std::vector<double> all = allgather(std::span<const double>(&x, 1));
  double m = all.front();
  for (double v : all) m = v > m ? v : m;
  return m;
}

void ShmComm::note_progress(long long phase) {
  if (hb_) hb_->note_phase(phase);
  if (cfg_.fault.kill_at_phase >= 0 && phase >= cfg_.fault.kill_at_phase)
    ::raise(SIGKILL);
  if (cfg_.fault.stop_at_phase >= 0 && phase >= cfg_.fault.stop_at_phase)
    ::raise(SIGSTOP);
}

ShmStats ShmComm::stats() const {
  ShmStats s = stats_;
  s.heartbeats_sent = hb_ ? hb_->count() : 0;
  return s;
}

void ShmComm::publish_stats() {
  if (cfg_.metrics == nullptr) return;
  const ShmStats s = stats();
  obs::MetricsRegistry& reg = *cfg_.metrics;
  const int r = cfg_.rank;
  reg.add(r, "shm/bytes_sent", static_cast<double>(s.bytes_sent));
  reg.add(r, "shm/bytes_received", static_cast<double>(s.bytes_received));
  reg.add(r, "shm/messages_sent", static_cast<double>(s.messages_sent));
  reg.add(r, "shm/messages_received",
          static_cast<double>(s.messages_received));
  reg.add(r, "shm/heartbeats", static_cast<double>(s.heartbeats_sent));
  reg.add(r, "shm/frames_dropped", static_cast<double>(s.frames_dropped));
  reg.add(r, "shm/spilled_frames", static_cast<double>(s.spilled_frames));
  reg.add(r, "shm/spilled_bytes", static_cast<double>(s.spilled_bytes));
  reg.add(r, "shm/recv_wait_seconds", s.recv_wait_seconds);
  reg.add(r, "shm/throttle_wait_seconds", s.throttle_wait_seconds);
  reg.add(r, "shm/futex_waits", static_cast<double>(s.futex_waits));
}

// ---------------------------------------------------------------------------
// Harnesses.

bool shm_dir_usable(const std::string& dir) {
  const std::string path =
      dir + "/.shm_probe." + std::to_string(::getpid());
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_RDWR | O_CLOEXEC,
                        0600);
  if (fd < 0) return false;
  bool ok = false;
  if (::ftruncate(fd, 4096) == 0) {
    void* base =
        ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    if (base != MAP_FAILED) {
      auto* p = static_cast<std::uint64_t*>(base);
      *p = kShmMagic;
      ok = *p == kShmMagic;
      ::munmap(base, 4096);
    }
  }
  ::close(fd);
  ::unlink(path.c_str());
  return ok;
}

namespace {

std::uint64_t fresh_session() {
  static std::atomic<std::uint64_t> counter{0};
  return (static_cast<std::uint64_t>(::getpid()) << 32) ^
         // det-lint: allow(wall-clock): session-uniqueness tag for ring
         // segment naming — an identifier, never a simulated value.
         static_cast<std::uint64_t>(
             std::chrono::steady_clock::now().time_since_epoch().count()) ^
         counter.fetch_add(1, std::memory_order_relaxed);
}

ShmCommConfig harness_config(int rank, int nranks, const std::string& dir,
                             std::uint64_t session,
                             const ShmRunOptions& opts) {
  ShmCommConfig cfg;
  cfg.rank = rank;
  cfg.nranks = nranks;
  cfg.dir = dir;
  cfg.comm = opts.comm;
  cfg.connect_timeout = opts.connect_timeout;
  cfg.ring_bytes = opts.ring_bytes;
  cfg.session = session;
  if (opts.faults) cfg.fault = opts.faults(rank);
  return cfg;
}

}  // namespace

void run_ranks_shm(int nranks, const std::function<void(Communicator&)>& fn,
                   const ShmRunOptions& opts) {
  SLIPFLOW_REQUIRE(nranks >= 1);
  SLIPFLOW_REQUIRE(fn != nullptr);
  namespace fs = std::filesystem;

  std::string dir = opts.dir;
  bool own_dir = false;
  if (dir.empty() && nranks > 1) {
    dir = make_socket_temp_dir();
    own_dir = true;
  }
  const std::uint64_t session = fresh_session();

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        const ShmCommConfig cfg = harness_config(r, nranks, dir, session, opts);
        SLIPFLOW_REQUIRE_MSG(
            cfg.fault.kill_at_phase < 0 && cfg.fault.stop_at_phase < 0,
            "run_ranks_shm: kill/stop faults need run_ranks_shm_forked");
        ShmComm comm(cfg);
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (own_dir) {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
}

void run_ranks_shm_forked(int nranks,
                          const std::function<void(Communicator&)>& fn,
                          const ShmRunOptions& opts) {
  SLIPFLOW_REQUIRE(fn != nullptr);
  namespace fs = std::filesystem;

  std::string dir = opts.dir;
  bool own_dir = false;
  if (dir.empty() && nranks > 1) {
    dir = make_socket_temp_dir();
    own_dir = true;
  }
  const std::uint64_t session = fresh_session();

  ForkRunOptions fopts;
  fopts.wall_timeout = opts.wall_timeout;
  fopts.who = "run_ranks_shm_forked";
  try {
    run_ranks_forked(
        nranks,
        [&](int r) {
          ShmComm comm(harness_config(r, nranks, dir, session, opts));
          fn(comm);
        },
        fopts);
  } catch (...) {
    if (own_dir) {
      std::error_code ec;
      fs::remove_all(dir, ec);
    }
    throw;
  }
  if (own_dir) {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
}

}  // namespace slipflow::transport
