#pragma once
/// \file fdio.hpp
/// Low-level file-descriptor and frame I/O shared by the transports:
/// monotonic time, errno-to-comm_error conversion, Unix-domain socket
/// setup (listener / dial-with-retry), bounded exact reads and writes,
/// and blocking frame send/recv for connection setup and heartbeats.
///
/// These were born inside socket_comm.cpp; they live here so the
/// shared-memory transport (shm_comm.cpp) can reuse the heartbeat and
/// rendezvous plumbing, and the launcher the nonblocking-fd setup,
/// without duplicating the error handling.

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "transport/frame.hpp"

namespace slipflow::transport::fdio {

inline double mono_now() {
  // det-lint: allow(wall-clock): timeout/heartbeat plumbing only —
  // never feeds observables or balancing decisions (those go through
  // the injectable obs::Clock seam).
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

[[noreturn]] inline void throw_errno(const std::string& what) {
  throw comm_error(what + ": " + std::strerror(errno));
}

inline sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  SLIPFLOW_REQUIRE_MSG(path.size() + 1 <= sizeof(addr.sun_path),
                       "unix socket path too long: " << path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

inline int make_listener(const std::string& path, int backlog) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket(listener " + path + ")");
  ::unlink(path.c_str());
  const sockaddr_un addr = make_addr(path);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd, backlog) < 0) {
    ::close(fd);
    throw_errno("listen(" + path + ")");
  }
  return fd;
}

/// Dial `path`, retrying "not there yet" failures until the deadline —
/// this is what makes worker startup order irrelevant.
inline int connect_retry(const std::string& path, double deadline,
                         const std::string& who) {
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket(" + path + ")");
    const sockaddr_un addr = make_addr(path);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      return fd;
    const int err = errno;
    ::close(fd);
    if (err != ECONNREFUSED && err != ENOENT && err != EAGAIN) {
      errno = err;
      throw_errno("connect(" + path + ")");
    }
    if (mono_now() >= deadline)
      throw comm_timeout(who + ": connect to " + path + " timed out");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

/// Wait (bounded) until fd is ready for `events`; throws comm_timeout
/// naming `what` on expiry.
inline void wait_ready(int fd, short events, double deadline,
                       const std::string& what) {
  for (;;) {
    const double remaining = deadline - mono_now();
    if (remaining <= 0.0) throw comm_timeout(what + ": timed out");
    pollfd p{fd, events, 0};
    const int rc = ::poll(&p, 1, static_cast<int>(remaining * 1000) + 1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll(" + what + ")");
    }
    if (rc > 0) return;
  }
}

inline void write_exact(int fd, const std::byte* data, std::size_t n,
                        double deadline, const std::string& what) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_ready(fd, POLLOUT, deadline, what);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    throw_errno("send(" + what + ")");
  }
}

inline void read_exact(int fd, std::byte* data, std::size_t n,
                       double deadline, const std::string& what) {
  std::size_t off = 0;
  while (off < n) {
    wait_ready(fd, POLLIN, deadline, what);
    const ssize_t r = ::read(fd, data + off, n - off);
    if (r > 0) {
      off += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) throw comm_error(what + ": connection closed during setup");
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    throw_errno("read(" + what + ")");
  }
}

/// Blocking send of a payload-free or small frame during setup.
inline void send_frame_blocking(int fd, const FrameHeader& h,
                                std::span<const double> payload,
                                double deadline, const std::string& what) {
  const auto hdr = encode_frame_header(h);
  write_exact(fd, hdr.data(), hdr.size(), deadline, what);
  if (!payload.empty())
    write_exact(fd, reinterpret_cast<const std::byte*>(payload.data()),
                payload.size() * sizeof(double), deadline, what);
}

inline FrameHeader recv_frame_blocking(int fd, std::vector<double>& payload,
                                       double deadline,
                                       const std::string& what) {
  std::array<std::byte, kFrameHeaderBytes> hdr;
  read_exact(fd, hdr.data(), hdr.size(), deadline, what);
  const FrameHeader h = decode_frame_header(hdr);
  payload.resize(h.count);
  if (h.count > 0)
    read_exact(fd, reinterpret_cast<std::byte*>(payload.data()),
               h.count * sizeof(double), deadline, what);
  return h;
}

inline void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw_errno("fcntl(O_NONBLOCK)");
}

}  // namespace slipflow::transport::fdio
