#pragma once
/// \file socket_comm.hpp
/// SocketComm — real multi-process Communicator over Unix-domain
/// sockets, the repo's stand-in for the paper's MPI-over-GigE cluster.
///
/// Topology: a full mesh of stream connections between N worker
/// processes. Connection setup is a rank-0 rendezvous (everyone creates
/// their own listener, checks in with rank 0, and dials the mesh only
/// after rank 0 releases — so no dial can race a missing listener).
///
/// Semantics match ThreadComm exactly:
///   - sends are eager/buffered: a send appends to a per-peer outbox and
///     flushes opportunistically without ever blocking on the receiver,
///     so the halo pattern "send left, send right, recv, recv" stays
///     deadlock-free even when payloads exceed the kernel socket buffer;
///   - messages are FIFO per (src, dst, tag) — frames on one stream
///     cannot overtake;
///   - allgather runs as a deterministic binomial gather tree to rank 0
///     followed by a binomial broadcast, concatenating contributions in
///     rank order; reductions fold the gathered vector in rank order.
///     Results are therefore byte-identical to ThreadComm's.
///
/// Failures are named, never silent: a bounded recv throws comm_timeout
/// with the pending (src, tag); a dead peer surfaces as comm_error the
/// moment its stream hits EOF. An optional heartbeat thread reports
/// (rank, phase) beats to the launcher's monitor socket, and a
/// deterministic fault-injection layer (kill/stop at phase K, drop,
/// delay, token-bucket throttling) drives the robustness tests and the
/// real-process remapping benchmarks.

#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "transport/communicator.hpp"
#include "transport/fault.hpp"

namespace slipflow::transport {

class HeartbeatSender;  // heartbeat.hpp

/// Transport-level counters of one endpoint (see also the `socket/*`
/// metrics published by publish_stats()).
struct SocketStats {
  long long bytes_sent = 0;      ///< framed bytes enqueued (headers incl.)
  long long bytes_received = 0;  ///< framed bytes parsed
  long long messages_sent = 0;
  long long messages_received = 0;
  long long heartbeats_sent = 0;
  long long frames_dropped = 0;  ///< by fault injection
  double recv_wait_seconds = 0.0;
  double throttle_wait_seconds = 0.0;
};

struct SocketCommConfig {
  int rank = 0;
  int nranks = 1;
  /// Directory holding the rendezvous + per-rank listener sockets; all
  /// ranks must agree. May be empty only for nranks == 1.
  std::string dir;
  CommOptions comm;
  /// Bound on rendezvous / mesh-dial / setup reads (seconds).
  double connect_timeout = 10.0;
  /// Launcher monitor socket; empty = no heartbeat thread.
  std::string heartbeat_path;
  double heartbeat_interval = 0.25;
  FaultInjection fault;
  /// When set, publish_stats() writes the endpoint's counters into this
  /// registry's shard `rank` under `socket/<name>`.
  obs::MetricsRegistry* metrics = nullptr;
};

class SocketComm final : public Communicator {
 public:
  /// Connects the full mesh (blocking, bounded by connect_timeout) and
  /// starts the heartbeat thread when configured.
  explicit SocketComm(SocketCommConfig cfg);
  /// Flushes pending sends (best effort, bounded), stops the heartbeat
  /// thread, closes every connection. Never throws.
  ~SocketComm() override;

  SocketComm(const SocketComm&) = delete;
  SocketComm& operator=(const SocketComm&) = delete;

  int rank() const override { return cfg_.rank; }
  int size() const override { return cfg_.nranks; }

  void send(int dest, int tag, std::span<const double> data) override;
  std::vector<double> recv(int src, int tag) override;
  /// test() drives one zero-timeout pass of the poll() progress engine,
  /// so posted receives complete while the caller computes; wait()
  /// delegates to recv() and inherits its timeout/closed diagnostics.
  RecvHandlePtr irecv(int src, int tag) override;
  void barrier() override;
  std::vector<double> allgather(std::span<const double> mine) override;
  using Communicator::allreduce_sum;  // the vector overload
  double allreduce_sum(double x) override;
  double allreduce_max(double x) override;
  void note_progress(long long phase) override;

  /// Counter snapshot (heartbeat count folded in from its thread).
  SocketStats stats() const;
  /// Write the snapshot into cfg.metrics (shard = rank) as `socket/*`
  /// counters; no-op without a registry. Call once, after the run.
  void publish_stats();

 private:
  class Handle;  // RecvHandle over the mailbox + progress engine

  struct Peer {
    int fd = -1;
    bool closed = false;
    std::deque<std::vector<std::byte>> outbox;
    std::size_t out_off = 0;      ///< bytes of outbox.front() already sent
    std::vector<std::byte> inbuf;
    std::size_t in_off = 0;       ///< parsed prefix of inbuf
  };

  void setup_mesh();
  void enqueue_data(int dest, int tag, std::span<const double> data);
  /// Flush as much of the peer's outbox as the kernel accepts right now.
  void flush_peer(int peer);
  /// Drain readable bytes and dispatch complete frames into mailboxes.
  void drain_peer(int src);
  /// One bounded step of the progress engine: poll all live peers for
  /// readability (and writability where an outbox is pending).
  /// max_wait_seconds <= 0 is a pure nonblocking pass (poll timeout 0).
  void progress(double max_wait_seconds);
  /// Claim the oldest queued (src, tag) message, if any. No progress.
  bool try_pop(int src, int tag, std::vector<double>& out);
  void throttle(std::size_t bytes);
  [[noreturn]] void throw_closed(int src, int tag) const;

  SocketCommConfig cfg_;
  std::vector<Peer> peers_;  ///< indexed by rank; self entry unused
  std::map<std::pair<int, int>, std::deque<std::vector<double>>> mail_;
  SocketStats stats_;
  double throttle_tokens_ = 0.0;
  double throttle_last_ = 0.0;
  int drop_remaining_ = 0;

  std::unique_ptr<HeartbeatSender> hb_;
};

/// In-process harness mirroring run_ranks() for the socket backend:
/// forks `nranks` child processes (no exec), each running `fn` on its
/// own SocketComm endpoint. The parent supervises with a wall-clock
/// watchdog, captures each child's stderr, and throws on any child
/// failure or on timeout with the collected per-rank diagnostics.
/// For true fresh-address-space workers use transport::launch_workers
/// with the slipflow_worker binary instead.
struct SocketRunOptions {
  CommOptions comm;
  double connect_timeout = 10.0;
  double wall_timeout = 60.0;
  /// Socket directory; empty = a fresh mkdtemp under $TMPDIR (falling
  /// back to /tmp), removed after.
  std::string dir;
  /// Optional per-rank fault injection.
  std::function<FaultInjection(int rank)> faults;
};

void run_ranks_sockets(int nranks,
                       const std::function<void(Communicator&)>& fn,
                       const SocketRunOptions& opts = {});

}  // namespace slipflow::transport
