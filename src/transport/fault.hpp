#pragma once
/// \file fault.hpp
/// Deterministic fault injection shared by the real-process transports
/// (SocketComm over Unix-domain sockets, ShmComm over shared-memory
/// rings). All triggers are counted/phase-based, never randomized, so a
/// failing run replays exactly.

namespace slipflow::transport {

/// Deterministic fault injection on one rank's endpoint.
struct FaultInjection {
  /// raise(SIGKILL) when note_progress reaches this phase (< 0 = off):
  /// the hard-crash case the launcher must turn into a named-rank error.
  long long kill_at_phase = -1;
  /// raise(SIGSTOP) at this phase (< 0 = off): the process freezes —
  /// heartbeats included — which is what the launcher's heartbeat
  /// monitor exists to catch.
  long long stop_at_phase = -1;
  /// Drop the first `drop_count` outgoing data frames whose destination
  /// matches `drop_dest` (-1 = any; -2 = injection off) and whose tag
  /// matches `drop_tag` (-1 = any). The receiver's bounded recv then
  /// reports the missing (src, tag) instead of hanging.
  int drop_dest = -2;
  int drop_tag = -1;
  int drop_count = 1;
  /// Sleep this long before every outgoing data frame (seconds).
  double send_delay = 0.0;
  /// Token-bucket bound on this rank's outgoing byte rate (bytes/s,
  /// 0 = unlimited) with a 0.1 s burst allowance — emulates the slow
  /// NIC / loaded host of the paper's non-dedicated nodes.
  double throttle_bytes_per_sec = 0.0;
};

}  // namespace slipflow::transport
