#pragma once
/// \file tempdir.hpp
/// Fresh private directory for rendezvous/listener sockets, honoring
/// TMPDIR (fallback /tmp) like mkstemp-based tooling does. Callers on
/// exotic TMPDIRs should keep it short: Unix-domain socket paths are
/// capped at sizeof(sockaddr_un::sun_path) (~108 bytes), and the bind
/// will fail with a named error if DIR/rank<N>.sock exceeds it.

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "transport/communicator.hpp"

namespace slipflow::transport {

/// mkdtemp($TMPDIR/slipflow.XXXXXX); throws comm_error on failure.
inline std::string make_socket_temp_dir() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = (base != nullptr && base[0] != '\0') ? base : "/tmp";
  while (tmpl.size() > 1 && tmpl.back() == '/') tmpl.pop_back();
  tmpl += "/slipflow.XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr)
    throw comm_error("mkdtemp(" + tmpl + "): " + std::strerror(errno));
  return std::string(buf.data());
}

}  // namespace slipflow::transport
