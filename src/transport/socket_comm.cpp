#include "transport/socket_comm.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <sstream>
#include <thread>

#include "transport/frame.hpp"
#include "transport/tempdir.hpp"

namespace slipflow::transport {

namespace {

double mono_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw comm_error(what + ": " + std::strerror(errno));
}

std::string rank_sock_path(const std::string& dir, int rank) {
  return dir + "/rank" + std::to_string(rank) + ".sock";
}

std::string ctl_sock_path(const std::string& dir) { return dir + "/ctl.sock"; }

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  SLIPFLOW_REQUIRE_MSG(path.size() + 1 <= sizeof(addr.sun_path),
                       "unix socket path too long: " << path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

int make_listener(const std::string& path, int backlog) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket(listener " + path + ")");
  ::unlink(path.c_str());
  const sockaddr_un addr = make_addr(path);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd, backlog) < 0) {
    ::close(fd);
    throw_errno("listen(" + path + ")");
  }
  return fd;
}

/// Dial `path`, retrying "not there yet" failures until the deadline —
/// this is what makes worker startup order irrelevant.
int connect_retry(const std::string& path, double deadline,
                  const std::string& who) {
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket(" + path + ")");
    const sockaddr_un addr = make_addr(path);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      return fd;
    const int err = errno;
    ::close(fd);
    if (err != ECONNREFUSED && err != ENOENT && err != EAGAIN) {
      errno = err;
      throw_errno("connect(" + path + ")");
    }
    if (mono_now() >= deadline)
      throw comm_timeout(who + ": connect to " + path + " timed out");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

/// Wait (bounded) until fd is ready for `events`; throws comm_timeout
/// naming `what` on expiry.
void wait_ready(int fd, short events, double deadline,
                const std::string& what) {
  for (;;) {
    const double remaining = deadline - mono_now();
    if (remaining <= 0.0) throw comm_timeout(what + ": timed out");
    pollfd p{fd, events, 0};
    const int rc = ::poll(&p, 1, static_cast<int>(remaining * 1000) + 1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll(" + what + ")");
    }
    if (rc > 0) return;
  }
}

void write_exact(int fd, const std::byte* data, std::size_t n,
                 double deadline, const std::string& what) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w =
        ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_ready(fd, POLLOUT, deadline, what);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    throw_errno("send(" + what + ")");
  }
}

void read_exact(int fd, std::byte* data, std::size_t n, double deadline,
                const std::string& what) {
  std::size_t off = 0;
  while (off < n) {
    wait_ready(fd, POLLIN, deadline, what);
    const ssize_t r = ::read(fd, data + off, n - off);
    if (r > 0) {
      off += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) throw comm_error(what + ": connection closed during setup");
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    throw_errno("read(" + what + ")");
  }
}

/// Blocking send of a payload-free or small frame during setup.
void send_frame_blocking(int fd, const FrameHeader& h,
                         std::span<const double> payload, double deadline,
                         const std::string& what) {
  const auto hdr = encode_frame_header(h);
  write_exact(fd, hdr.data(), hdr.size(), deadline, what);
  if (!payload.empty())
    write_exact(fd, reinterpret_cast<const std::byte*>(payload.data()),
                payload.size() * sizeof(double), deadline, what);
}

FrameHeader recv_frame_blocking(int fd, std::vector<double>& payload,
                                double deadline, const std::string& what) {
  std::array<std::byte, kFrameHeaderBytes> hdr;
  read_exact(fd, hdr.data(), hdr.size(), deadline, what);
  const FrameHeader h = decode_frame_header(hdr);
  payload.resize(h.count);
  if (h.count > 0)
    read_exact(fd, reinterpret_cast<std::byte*>(payload.data()),
               h.count * sizeof(double), deadline, what);
  return h;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw_errno("fcntl(O_NONBLOCK)");
}

}  // namespace

SocketComm::SocketComm(SocketCommConfig cfg) : cfg_(std::move(cfg)) {
  SLIPFLOW_REQUIRE(cfg_.nranks >= 1);
  SLIPFLOW_REQUIRE(cfg_.rank >= 0 && cfg_.rank < cfg_.nranks);
  SLIPFLOW_REQUIRE_MSG(cfg_.nranks == 1 || !cfg_.dir.empty(),
                       "SocketComm needs a socket directory for > 1 rank");
  drop_remaining_ = cfg_.fault.drop_dest == -2 ? 0 : cfg_.fault.drop_count;
  throttle_last_ = mono_now();
  // 0.1 s of burst allowance; see FaultInjection::throttle_bytes_per_sec.
  throttle_tokens_ = 0.1 * cfg_.fault.throttle_bytes_per_sec;
  peers_.resize(static_cast<std::size_t>(cfg_.nranks));
  // Heartbeats start before the rendezvous so a rank stuck in connection
  // setup is already visible to the launcher's monitor.
  if (!cfg_.heartbeat_path.empty()) start_heartbeat();
  if (cfg_.nranks > 1) setup_mesh();
}

void SocketComm::setup_mesh() {
  const std::string who = "rank " + std::to_string(cfg_.rank);
  const double deadline = mono_now() + cfg_.connect_timeout;
  const std::string my_path = rank_sock_path(cfg_.dir, cfg_.rank);
  const int listener = make_listener(my_path, cfg_.nranks + 2);

  try {
    // --- rank-0 rendezvous: everyone's listener exists before anyone
    // dials the mesh, so mesh connects can never race a missing peer.
    if (cfg_.rank == 0) {
      const int ctl = make_listener(ctl_sock_path(cfg_.dir), cfg_.nranks + 2);
      std::vector<int> conns;
      try {
        std::vector<double> none;
        for (int i = 0; i < cfg_.nranks - 1; ++i) {
          wait_ready(ctl, POLLIN, deadline, who + ": rendezvous accept");
          const int c = ::accept(ctl, nullptr, nullptr);
          if (c < 0) throw_errno("accept(rendezvous)");
          conns.push_back(c);
          const FrameHeader h =
              recv_frame_blocking(c, none, deadline, who + ": rendezvous hello");
          if (h.kind != FrameKind::kHello)
            throw comm_error(who + ": rendezvous expected hello frame");
        }
        FrameHeader release;
        release.kind = FrameKind::kRelease;
        release.src = 0;
        for (const int c : conns)
          send_frame_blocking(c, release, {}, deadline,
                              who + ": rendezvous release");
      } catch (...) {
        for (const int c : conns) ::close(c);
        ::close(ctl);
        ::unlink(ctl_sock_path(cfg_.dir).c_str());
        throw;
      }
      for (const int c : conns) ::close(c);
      ::close(ctl);
      ::unlink(ctl_sock_path(cfg_.dir).c_str());
    } else {
      const int ctl =
          connect_retry(ctl_sock_path(cfg_.dir), deadline, who + ": rendezvous");
      try {
        FrameHeader hello;
        hello.kind = FrameKind::kHello;
        hello.src = cfg_.rank;
        send_frame_blocking(ctl, hello, {}, deadline, who + ": hello");
        std::vector<double> none;
        const FrameHeader h = recv_frame_blocking(
            ctl, none, deadline, who + ": waiting for rendezvous release");
        if (h.kind != FrameKind::kRelease)
          throw comm_error(who + ": rendezvous expected release frame");
      } catch (...) {
        ::close(ctl);
        throw;
      }
      ::close(ctl);
    }

    // --- mesh: dial every lower rank, accept every higher rank.
    for (int s = cfg_.rank - 1; s >= 0; --s) {
      const int fd = connect_retry(rank_sock_path(cfg_.dir, s), deadline,
                                   who + ": mesh dial");
      FrameHeader hello;
      hello.kind = FrameKind::kHello;
      hello.src = cfg_.rank;
      send_frame_blocking(fd, hello, {}, deadline, who + ": mesh hello");
      peers_[static_cast<std::size_t>(s)].fd = fd;
    }
    for (int i = cfg_.rank + 1; i < cfg_.nranks; ++i) {
      wait_ready(listener, POLLIN, deadline, who + ": mesh accept");
      const int fd = ::accept(listener, nullptr, nullptr);
      if (fd < 0) throw_errno("accept(mesh)");
      std::vector<double> none;
      const FrameHeader h =
          recv_frame_blocking(fd, none, deadline, who + ": mesh hello");
      if (h.kind != FrameKind::kHello || h.src <= cfg_.rank ||
          h.src >= cfg_.nranks)
        throw comm_error(who + ": bad mesh hello");
      Peer& p = peers_[static_cast<std::size_t>(h.src)];
      if (p.fd >= 0) throw comm_error(who + ": duplicate mesh connection");
      p.fd = fd;
    }
  } catch (...) {
    ::close(listener);
    ::unlink(my_path.c_str());
    throw;
  }
  ::close(listener);
  ::unlink(my_path.c_str());

  for (int s = 0; s < cfg_.nranks; ++s)
    if (s != cfg_.rank) set_nonblocking(peers_[static_cast<std::size_t>(s)].fd);
}

SocketComm::~SocketComm() {
  stop_heartbeat();
  // Best-effort flush so a rank that finishes early does not strand
  // messages its peers still want (eager-send contract); bounded so
  // teardown can never hang.
  try {
    const double deadline = mono_now() + 5.0;
    for (;;) {
      bool pending = false;
      for (int s = 0; s < cfg_.nranks; ++s) {
        Peer& p = peers_[static_cast<std::size_t>(s)];
        if (p.fd < 0 || p.closed || p.outbox.empty()) continue;
        flush_peer(s);
        if (!p.outbox.empty() && !p.closed) pending = true;
      }
      if (!pending || mono_now() >= deadline) break;
      progress(0.01);
    }
  } catch (...) {
    // teardown must not throw
  }
  for (Peer& p : peers_)
    if (p.fd >= 0) ::close(p.fd);
}

void SocketComm::throttle(std::size_t bytes) {
  const double bps = cfg_.fault.throttle_bytes_per_sec;
  if (bps <= 0.0) return;
  const double now = mono_now();
  throttle_tokens_ = std::min(0.1 * bps,
                              throttle_tokens_ + (now - throttle_last_) * bps);
  throttle_last_ = now;
  const double need = static_cast<double>(bytes);
  if (need > throttle_tokens_) {
    const double wait = (need - throttle_tokens_) / bps;
    stats_.throttle_wait_seconds += wait;
    std::this_thread::sleep_for(std::chrono::duration<double>(wait));
    throttle_last_ = mono_now();
  }
  throttle_tokens_ -= need;
}

void SocketComm::enqueue_data(int dest, int tag, std::span<const double> data) {
  FrameHeader h;
  h.kind = FrameKind::kData;
  h.src = cfg_.rank;
  h.tag = tag;
  h.count = data.size();
  const auto hdr = encode_frame_header(h);
  std::vector<std::byte> frame(hdr.size() + data.size() * sizeof(double));
  std::memcpy(frame.data(), hdr.data(), hdr.size());
  if (!data.empty())
    std::memcpy(frame.data() + hdr.size(), data.data(),
                data.size() * sizeof(double));
  throttle(frame.size());
  stats_.bytes_sent += static_cast<long long>(frame.size());
  Peer& p = peers_[static_cast<std::size_t>(dest)];
  if (p.closed)
    throw comm_error("rank " + std::to_string(cfg_.rank) + ": send to rank " +
                     std::to_string(dest) + " failed: connection closed");
  p.outbox.push_back(std::move(frame));
  flush_peer(dest);  // opportunistic; leftovers drain in progress()
}

void SocketComm::send(int dest, int tag, std::span<const double> data) {
  SLIPFLOW_REQUIRE(dest >= 0 && dest < cfg_.nranks);
  if (drop_remaining_ > 0 &&
      (cfg_.fault.drop_dest == -1 || cfg_.fault.drop_dest == dest) &&
      (cfg_.fault.drop_tag == -1 || cfg_.fault.drop_tag == tag)) {
    --drop_remaining_;
    ++stats_.frames_dropped;
    return;
  }
  if (cfg_.fault.send_delay > 0.0)
    std::this_thread::sleep_for(
        std::chrono::duration<double>(cfg_.fault.send_delay));
  ++stats_.messages_sent;
  if (dest == cfg_.rank) {
    mail_[{cfg_.rank, tag}].emplace_back(data.begin(), data.end());
    ++stats_.messages_received;
    return;
  }
  enqueue_data(dest, tag, data);
}

void SocketComm::flush_peer(int peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  while (!p.outbox.empty()) {
    const std::vector<std::byte>& buf = p.outbox.front();
    const ssize_t w = ::send(p.fd, buf.data() + p.out_off,
                             buf.size() - p.out_off,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (w > 0) {
      p.out_off += static_cast<std::size_t>(w);
      if (p.out_off == buf.size()) {
        p.outbox.pop_front();
        p.out_off = 0;
      }
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (w < 0 && errno == EINTR) continue;
    // EPIPE / ECONNRESET: the peer is gone; undeliverable output is
    // dropped and the next recv involving this peer reports it.
    p.closed = true;
    p.outbox.clear();
    p.out_off = 0;
    return;
  }
}

void SocketComm::drain_peer(int src) {
  Peer& p = peers_[static_cast<std::size_t>(src)];
  std::byte chunk[65536];
  for (;;) {
    const ssize_t r = ::read(p.fd, chunk, sizeof(chunk));
    if (r > 0) {
      p.inbuf.insert(p.inbuf.end(), chunk, chunk + r);
      if (static_cast<std::size_t>(r) == sizeof(chunk)) continue;
      break;
    }
    if (r == 0) {
      p.closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    p.closed = true;
    break;
  }
  // Parse complete frames off the accumulated buffer.
  while (p.inbuf.size() - p.in_off >= kFrameHeaderBytes) {
    const FrameHeader h = decode_frame_header(
        std::span<const std::byte>(p.inbuf).subspan(p.in_off));
    const std::size_t need =
        kFrameHeaderBytes + static_cast<std::size_t>(h.count) * sizeof(double);
    if (p.inbuf.size() - p.in_off < need) break;
    if (h.kind != FrameKind::kData || h.src != src)
      throw comm_error("rank " + std::to_string(cfg_.rank) +
                       ": unexpected frame from rank " + std::to_string(src));
    std::vector<double> payload(h.count);
    if (h.count > 0)
      std::memcpy(payload.data(), p.inbuf.data() + p.in_off + kFrameHeaderBytes,
                  payload.size() * sizeof(double));
    mail_[{src, h.tag}].push_back(std::move(payload));
    ++stats_.messages_received;
    stats_.bytes_received += static_cast<long long>(need);
    p.in_off += need;
  }
  if (p.in_off > 0) {
    p.inbuf.erase(p.inbuf.begin(),
                  p.inbuf.begin() + static_cast<std::ptrdiff_t>(p.in_off));
    p.in_off = 0;
  }
}

void SocketComm::progress(double max_wait_seconds) {
  std::vector<pollfd> pfds;
  std::vector<int> ranks;
  for (int s = 0; s < cfg_.nranks; ++s) {
    if (s == cfg_.rank) continue;
    Peer& p = peers_[static_cast<std::size_t>(s)];
    if (p.fd < 0 || p.closed) continue;
    short events = POLLIN;
    if (!p.outbox.empty()) events |= POLLOUT;
    pfds.push_back(pollfd{p.fd, events, 0});
    ranks.push_back(s);
  }
  if (pfds.empty()) {
    if (max_wait_seconds > 0.0)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(std::min(max_wait_seconds, 0.01)));
    return;
  }
  const int timeout_ms =
      max_wait_seconds <= 0.0
          ? 0
          : std::max(1, static_cast<int>(max_wait_seconds * 1000.0));
  const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) return;
    throw_errno("poll(progress)");
  }
  for (std::size_t i = 0; i < pfds.size(); ++i) {
    if (pfds[i].revents == 0) continue;
    if (pfds[i].revents & POLLOUT) flush_peer(ranks[i]);
    if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) drain_peer(ranks[i]);
  }
}

void SocketComm::throw_closed(int src, int tag) const {
  throw comm_error("rank " + std::to_string(cfg_.rank) +
                   ": connection to rank " + std::to_string(src) +
                   " closed while waiting for (src=" + std::to_string(src) +
                   ", tag=" + std::to_string(tag) + ")");
}

bool SocketComm::try_pop(int src, int tag, std::vector<double>& out) {
  const auto it = mail_.find({src, tag});
  if (it == mail_.end() || it->second.empty()) return false;
  out = std::move(it->second.front());
  it->second.pop_front();
  return true;
}

std::vector<double> SocketComm::recv(int src, int tag) {
  SLIPFLOW_REQUIRE(src >= 0 && src < cfg_.nranks);
  const double t0 = mono_now();
  const double timeout = cfg_.comm.recv_timeout;
  const double deadline =
      timeout > 0.0 ? t0 + timeout : std::numeric_limits<double>::infinity();
  for (;;) {
    std::vector<double> out;
    if (try_pop(src, tag, out)) {
      stats_.recv_wait_seconds += mono_now() - t0;
      return out;
    }
    if (src == cfg_.rank)
      throw comm_error("rank " + std::to_string(cfg_.rank) +
                       ": blocking self-recv with empty mailbox would "
                       "deadlock (tag " + std::to_string(tag) + ")");
    if (peers_[static_cast<std::size_t>(src)].closed) throw_closed(src, tag);
    const double now = mono_now();
    if (now >= deadline)
      throw comm_timeout(
          "rank " + std::to_string(cfg_.rank) + ": recv timeout after " +
          std::to_string(timeout) + "s waiting for (src=" +
          std::to_string(src) + ", tag=" + std::to_string(tag) + ")");
    progress(std::min(0.1, deadline - now));
  }
}

/// Completion = the matching frame has been drained into the mailbox.
/// test() makes progress (one zero-timeout poll pass) before giving up,
/// so a rank that only ever calls test() between compute chunks still
/// flushes its outboxes and drains arrivals. A dead peer surfaces from
/// test() as the same named comm_error a blocking recv would throw; a
/// pending self-receive just stays incomplete (the matching self-send
/// may come later from this same thread).
class SocketComm::Handle final : public RecvHandle {
 public:
  Handle(SocketComm& comm, int src, int tag)
      : comm_(comm), src_(src), tag_(tag) {}

  bool test() override {
    if (done_) return true;
    if (comm_.try_pop(src_, tag_, payload_)) return done_ = true;
    if (src_ != comm_.cfg_.rank) {
      comm_.progress(0.0);
      if (comm_.try_pop(src_, tag_, payload_)) return done_ = true;
      if (comm_.peers_[static_cast<std::size_t>(src_)].closed)
        comm_.throw_closed(src_, tag_);
    }
    return false;
  }

  std::vector<double> wait() override {
    if (!done_) {
      payload_ = comm_.recv(src_, tag_);
      done_ = true;
    }
    return std::move(payload_);
  }

 private:
  SocketComm& comm_;
  const int src_, tag_;
  bool done_ = false;
  std::vector<double> payload_;
};

RecvHandlePtr SocketComm::irecv(int src, int tag) {
  SLIPFLOW_REQUIRE(src >= 0 && src < cfg_.nranks);
  return std::make_unique<Handle>(*this, src, tag);
}

namespace {
// Reserved tags of the collective trees; user tags are non-negative.
constexpr int kTagGatherTree = -101;
constexpr int kTagBcastTree = -102;
}  // namespace

std::vector<double> SocketComm::allgather(std::span<const double> mine) {
  const int n = cfg_.nranks;
  const int me = cfg_.rank;
  if (n == 1) return {mine.begin(), mine.end()};

  // Binomial gather toward rank 0. Each message packs the sender's
  // collected contiguous rank range as [k, (rank_i, count_i)*k, payloads
  // in listed order], which keeps ragged contribution sizes exact.
  std::map<int, std::vector<double>> parts;
  parts[me] = {mine.begin(), mine.end()};
  for (int step = 1; step < n; step <<= 1) {
    if (me & step) {
      std::vector<double> msg;
      msg.push_back(static_cast<double>(parts.size()));
      for (const auto& [r, v] : parts) {
        msg.push_back(static_cast<double>(r));
        msg.push_back(static_cast<double>(v.size()));
      }
      for (const auto& [r, v] : parts) {
        (void)r;
        msg.insert(msg.end(), v.begin(), v.end());
      }
      send(me - step, kTagGatherTree, msg);
      parts.clear();
      break;
    }
    if (me + step < n) {
      const std::vector<double> msg = recv(me + step, kTagGatherTree);
      SLIPFLOW_REQUIRE(!msg.empty());
      const auto k = static_cast<std::size_t>(msg[0]);
      std::size_t off = 1 + 2 * k;
      for (std::size_t i = 0; i < k; ++i) {
        const int r = static_cast<int>(msg[1 + 2 * i]);
        const auto cnt = static_cast<std::size_t>(msg[2 + 2 * i]);
        SLIPFLOW_REQUIRE(r >= 0 && r < n && off + cnt <= msg.size());
        parts[r].assign(msg.begin() + static_cast<std::ptrdiff_t>(off),
                        msg.begin() + static_cast<std::ptrdiff_t>(off + cnt));
        off += cnt;
      }
    }
  }

  // Rank 0 concatenates in rank order — the exact layout ThreadComm's
  // shared-memory allgather produces — then a binomial broadcast.
  std::vector<double> result;
  if (me == 0) {
    SLIPFLOW_REQUIRE_MSG(static_cast<int>(parts.size()) == n,
                         "allgather: missing contributions");
    for (int r = 0; r < n; ++r) {
      const auto& v = parts.at(r);
      result.insert(result.end(), v.begin(), v.end());
    }
  }
  int rounds = 0;
  while ((1 << rounds) < n) ++rounds;
  bool have = me == 0;
  for (int step = 1 << (rounds - 1); step >= 1; step >>= 1) {
    if (have && me % (2 * step) == 0 && me + step < n)
      send(me + step, kTagBcastTree, result);
    else if (!have && me % (2 * step) == step) {
      result = recv(me - step, kTagBcastTree);
      have = true;
    }
  }
  return result;
}

void SocketComm::barrier() { (void)allgather({}); }

double SocketComm::allreduce_sum(double x) {
  const std::vector<double> all = allgather(std::span<const double>(&x, 1));
  double s = 0.0;
  for (double v : all) s += v;
  return s;
}

double SocketComm::allreduce_max(double x) {
  const std::vector<double> all = allgather(std::span<const double>(&x, 1));
  double m = all.front();
  for (double v : all) m = v > m ? v : m;
  return m;
}

void SocketComm::note_progress(long long phase) {
  progress_phase_.store(phase, std::memory_order_relaxed);
  if (cfg_.fault.kill_at_phase >= 0 && phase >= cfg_.fault.kill_at_phase)
    ::raise(SIGKILL);
  if (cfg_.fault.stop_at_phase >= 0 && phase >= cfg_.fault.stop_at_phase)
    ::raise(SIGSTOP);
}

void SocketComm::start_heartbeat() {
  const double deadline = mono_now() + cfg_.connect_timeout;
  hb_fd_ = connect_retry(cfg_.heartbeat_path, deadline,
                         "rank " + std::to_string(cfg_.rank) + ": heartbeat");
  hb_thread_ = std::thread([this] {
    long long seq = 0;
    for (;;) {
      FrameHeader h;
      h.kind = FrameKind::kHeartbeat;
      h.src = cfg_.rank;
      h.count = 2;
      const double payload[2] = {
          static_cast<double>(progress_phase_.load(std::memory_order_relaxed)),
          static_cast<double>(seq++)};
      const auto hdr = encode_frame_header(h);
      std::byte frame[kFrameHeaderBytes + 2 * sizeof(double)];
      std::memcpy(frame, hdr.data(), hdr.size());
      std::memcpy(frame + hdr.size(), payload, sizeof(payload));
      // Blocking write on the heartbeat's own fd; the monitor always
      // drains, and a dead monitor (EPIPE) just ends the beats.
      if (::send(hb_fd_, frame, sizeof(frame), MSG_NOSIGNAL) < 0) return;
      hb_count_.fetch_add(1, std::memory_order_relaxed);
      std::unique_lock<std::mutex> lk(hb_mu_);
      if (hb_cv_.wait_for(lk,
                          std::chrono::duration<double>(
                              cfg_.heartbeat_interval),
                          [this] { return hb_stop_; }))
        return;
    }
  });
}

void SocketComm::stop_heartbeat() {
  if (!hb_thread_.joinable()) {
    if (hb_fd_ >= 0) ::close(hb_fd_);
    hb_fd_ = -1;
    return;
  }
  {
    std::lock_guard<std::mutex> lk(hb_mu_);
    hb_stop_ = true;
  }
  hb_cv_.notify_all();
  hb_thread_.join();
  ::close(hb_fd_);
  hb_fd_ = -1;
}

SocketStats SocketComm::stats() const {
  SocketStats s = stats_;
  s.heartbeats_sent = hb_count_.load(std::memory_order_relaxed);
  return s;
}

void SocketComm::publish_stats() {
  if (cfg_.metrics == nullptr) return;
  const SocketStats s = stats();
  obs::MetricsRegistry& reg = *cfg_.metrics;
  const int r = cfg_.rank;
  reg.add(r, "socket/bytes_sent", static_cast<double>(s.bytes_sent));
  reg.add(r, "socket/bytes_received", static_cast<double>(s.bytes_received));
  reg.add(r, "socket/messages_sent", static_cast<double>(s.messages_sent));
  reg.add(r, "socket/messages_received",
          static_cast<double>(s.messages_received));
  reg.add(r, "socket/heartbeats", static_cast<double>(s.heartbeats_sent));
  reg.add(r, "socket/frames_dropped", static_cast<double>(s.frames_dropped));
  reg.add(r, "socket/recv_wait_seconds", s.recv_wait_seconds);
  reg.add(r, "socket/throttle_wait_seconds", s.throttle_wait_seconds);
}

// ---------------------------------------------------------------------------
// Forked in-process harness.

void run_ranks_sockets(int nranks,
                       const std::function<void(Communicator&)>& fn,
                       const SocketRunOptions& opts) {
  SLIPFLOW_REQUIRE(nranks >= 1);
  SLIPFLOW_REQUIRE(fn != nullptr);
  namespace fs = std::filesystem;

  std::string dir = opts.dir;
  bool own_dir = false;
  if (dir.empty()) {
    dir = make_socket_temp_dir();
    own_dir = true;
  }

  struct Child {
    pid_t pid = -1;
    int err_fd = -1;
    bool done = false;
    int status = 0;
    std::string err;
  };
  std::vector<Child> children(static_cast<std::size_t>(nranks));

  // Parent-side buffered stdio must not leak duplicated output into the
  // children.
  std::fflush(stdout);
  std::fflush(stderr);

  for (int r = 0; r < nranks; ++r) {
    int pipefd[2];
    if (::pipe(pipefd) < 0) throw_errno("pipe");
    const pid_t pid = ::fork();
    if (pid < 0) throw_errno("fork");
    if (pid == 0) {
      // --- child: run the rank, report failure via exit code + stderr.
      ::close(pipefd[0]);
      ::dup2(pipefd[1], 2);
      ::close(pipefd[1]);
      int code = 0;
      try {
        SocketCommConfig cfg;
        cfg.rank = r;
        cfg.nranks = nranks;
        cfg.dir = dir;
        cfg.comm = opts.comm;
        cfg.connect_timeout = opts.connect_timeout;
        if (opts.faults) cfg.fault = opts.faults(r);
        SocketComm comm(cfg);
        fn(comm);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "rank %d: %s\n", r, e.what());
        code = 3;
      } catch (...) {
        std::fprintf(stderr, "rank %d: unknown exception\n", r);
        code = 3;
      }
      std::fflush(nullptr);
      ::_exit(code);
    }
    ::close(pipefd[1]);
    set_nonblocking(pipefd[0]);
    children[static_cast<std::size_t>(r)] =
        Child{pid, pipefd[0], false, 0, {}};
  }

  const double deadline = mono_now() + opts.wall_timeout;
  bool timed_out = false;
  auto drain_err = [&children] {
    char buf[4096];
    for (Child& c : children) {
      if (c.err_fd < 0) continue;
      for (;;) {
        const ssize_t n = ::read(c.err_fd, buf, sizeof(buf));
        if (n > 0) {
          c.err.append(buf, static_cast<std::size_t>(n));
          continue;
        }
        if (n == 0) {
          ::close(c.err_fd);
          c.err_fd = -1;
        }
        break;
      }
    }
  };

  int running = nranks;
  while (running > 0) {
    drain_err();
    for (Child& c : children) {
      if (c.done) continue;
      int status = 0;
      const pid_t w = ::waitpid(c.pid, &status, WNOHANG);
      if (w == c.pid) {
        c.done = true;
        c.status = status;
        --running;
      }
    }
    if (running == 0) break;
    if (mono_now() >= deadline) {
      timed_out = true;
      for (Child& c : children)
        if (!c.done) ::kill(c.pid, SIGKILL);
      for (Child& c : children) {
        if (c.done) continue;
        ::waitpid(c.pid, &c.status, 0);
        c.done = true;
      }
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  drain_err();
  for (Child& c : children)
    if (c.err_fd >= 0) ::close(c.err_fd);
  if (own_dir) {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }

  std::ostringstream diag;
  bool failed = timed_out;
  for (int r = 0; r < nranks; ++r) {
    const Child& c = children[static_cast<std::size_t>(r)];
    if (WIFSIGNALED(c.status))
      diag << "rank " << r << " killed by signal " << WTERMSIG(c.status)
           << "\n";
    else if (WIFEXITED(c.status) && WEXITSTATUS(c.status) != 0)
      diag << "rank " << r << " exited with code " << WEXITSTATUS(c.status)
           << "\n";
    else
      continue;
    failed = true;
  }
  if (!failed) return;
  for (int r = 0; r < nranks; ++r) {
    const Child& c = children[static_cast<std::size_t>(r)];
    if (!c.err.empty()) diag << c.err;
  }
  if (timed_out)
    throw comm_timeout("run_ranks_sockets: wall timeout after " +
                       std::to_string(opts.wall_timeout) + "s\n" + diag.str());
  throw comm_error("run_ranks_sockets: rank failure\n" + diag.str());
}

}  // namespace slipflow::transport
