#include "transport/socket_comm.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <limits>
#include <thread>

#include "transport/collectives.hpp"
#include "transport/fdio.hpp"
#include "transport/fork_harness.hpp"
#include "transport/frame.hpp"
#include "transport/heartbeat.hpp"
#include "transport/tempdir.hpp"

namespace slipflow::transport {

using fdio::connect_retry;
using fdio::make_listener;
using fdio::mono_now;
using fdio::recv_frame_blocking;
using fdio::send_frame_blocking;
using fdio::set_nonblocking;
using fdio::throw_errno;
using fdio::wait_ready;

namespace {

std::string rank_sock_path(const std::string& dir, int rank) {
  return dir + "/rank" + std::to_string(rank) + ".sock";
}

std::string ctl_sock_path(const std::string& dir) { return dir + "/ctl.sock"; }

}  // namespace

SocketComm::SocketComm(SocketCommConfig cfg) : cfg_(std::move(cfg)) {
  SLIPFLOW_REQUIRE(cfg_.nranks >= 1);
  SLIPFLOW_REQUIRE(cfg_.rank >= 0 && cfg_.rank < cfg_.nranks);
  SLIPFLOW_REQUIRE_MSG(cfg_.nranks == 1 || !cfg_.dir.empty(),
                       "SocketComm needs a socket directory for > 1 rank");
  drop_remaining_ = cfg_.fault.drop_dest == -2 ? 0 : cfg_.fault.drop_count;
  throttle_last_ = mono_now();
  // 0.1 s of burst allowance; see FaultInjection::throttle_bytes_per_sec.
  throttle_tokens_ = 0.1 * cfg_.fault.throttle_bytes_per_sec;
  peers_.resize(static_cast<std::size_t>(cfg_.nranks));
  // Heartbeats start before the rendezvous so a rank stuck in connection
  // setup is already visible to the launcher's monitor.
  if (!cfg_.heartbeat_path.empty())
    hb_ = std::make_unique<HeartbeatSender>(cfg_.rank, cfg_.heartbeat_path,
                                            cfg_.heartbeat_interval,
                                            cfg_.connect_timeout);
  if (cfg_.nranks > 1) setup_mesh();
}

void SocketComm::setup_mesh() {
  const std::string who = "rank " + std::to_string(cfg_.rank);
  const double deadline = mono_now() + cfg_.connect_timeout;
  const std::string my_path = rank_sock_path(cfg_.dir, cfg_.rank);
  const int listener = make_listener(my_path, cfg_.nranks + 2);

  try {
    // --- rank-0 rendezvous: everyone's listener exists before anyone
    // dials the mesh, so mesh connects can never race a missing peer.
    if (cfg_.rank == 0) {
      const int ctl = make_listener(ctl_sock_path(cfg_.dir), cfg_.nranks + 2);
      std::vector<int> conns;
      try {
        std::vector<double> none;
        for (int i = 0; i < cfg_.nranks - 1; ++i) {
          wait_ready(ctl, POLLIN, deadline, who + ": rendezvous accept");
          const int c = ::accept(ctl, nullptr, nullptr);
          if (c < 0) throw_errno("accept(rendezvous)");
          conns.push_back(c);
          const FrameHeader h =
              recv_frame_blocking(c, none, deadline, who + ": rendezvous hello");
          if (h.kind != FrameKind::kHello)
            throw comm_error(who + ": rendezvous expected hello frame");
        }
        FrameHeader release;
        release.kind = FrameKind::kRelease;
        release.src = 0;
        for (const int c : conns)
          send_frame_blocking(c, release, {}, deadline,
                              who + ": rendezvous release");
      } catch (...) {
        for (const int c : conns) ::close(c);
        ::close(ctl);
        ::unlink(ctl_sock_path(cfg_.dir).c_str());
        throw;
      }
      for (const int c : conns) ::close(c);
      ::close(ctl);
      ::unlink(ctl_sock_path(cfg_.dir).c_str());
    } else {
      const int ctl =
          connect_retry(ctl_sock_path(cfg_.dir), deadline, who + ": rendezvous");
      try {
        FrameHeader hello;
        hello.kind = FrameKind::kHello;
        hello.src = cfg_.rank;
        send_frame_blocking(ctl, hello, {}, deadline, who + ": hello");
        std::vector<double> none;
        const FrameHeader h = recv_frame_blocking(
            ctl, none, deadline, who + ": waiting for rendezvous release");
        if (h.kind != FrameKind::kRelease)
          throw comm_error(who + ": rendezvous expected release frame");
      } catch (...) {
        ::close(ctl);
        throw;
      }
      ::close(ctl);
    }

    // --- mesh: dial every lower rank, accept every higher rank.
    for (int s = cfg_.rank - 1; s >= 0; --s) {
      const int fd = connect_retry(rank_sock_path(cfg_.dir, s), deadline,
                                   who + ": mesh dial");
      FrameHeader hello;
      hello.kind = FrameKind::kHello;
      hello.src = cfg_.rank;
      send_frame_blocking(fd, hello, {}, deadline, who + ": mesh hello");
      peers_[static_cast<std::size_t>(s)].fd = fd;
    }
    for (int i = cfg_.rank + 1; i < cfg_.nranks; ++i) {
      wait_ready(listener, POLLIN, deadline, who + ": mesh accept");
      const int fd = ::accept(listener, nullptr, nullptr);
      if (fd < 0) throw_errno("accept(mesh)");
      std::vector<double> none;
      const FrameHeader h =
          recv_frame_blocking(fd, none, deadline, who + ": mesh hello");
      if (h.kind != FrameKind::kHello || h.src <= cfg_.rank ||
          h.src >= cfg_.nranks)
        throw comm_error(who + ": bad mesh hello");
      Peer& p = peers_[static_cast<std::size_t>(h.src)];
      if (p.fd >= 0) throw comm_error(who + ": duplicate mesh connection");
      p.fd = fd;
    }
  } catch (...) {
    ::close(listener);
    ::unlink(my_path.c_str());
    throw;
  }
  ::close(listener);
  ::unlink(my_path.c_str());

  for (int s = 0; s < cfg_.nranks; ++s)
    if (s != cfg_.rank) set_nonblocking(peers_[static_cast<std::size_t>(s)].fd);
}

SocketComm::~SocketComm() {
  hb_.reset();
  // Best-effort flush so a rank that finishes early does not strand
  // messages its peers still want (eager-send contract); bounded so
  // teardown can never hang.
  try {
    const double deadline = mono_now() + 5.0;
    for (;;) {
      bool pending = false;
      for (int s = 0; s < cfg_.nranks; ++s) {
        Peer& p = peers_[static_cast<std::size_t>(s)];
        if (p.fd < 0 || p.closed || p.outbox.empty()) continue;
        flush_peer(s);
        if (!p.outbox.empty() && !p.closed) pending = true;
      }
      if (!pending || mono_now() >= deadline) break;
      progress(0.01);
    }
  } catch (...) {
    // teardown must not throw
  }
  for (Peer& p : peers_)
    if (p.fd >= 0) ::close(p.fd);
}

void SocketComm::throttle(std::size_t bytes) {
  const double bps = cfg_.fault.throttle_bytes_per_sec;
  if (bps <= 0.0) return;
  const double now = mono_now();
  throttle_tokens_ = std::min(0.1 * bps,
                              throttle_tokens_ + (now - throttle_last_) * bps);
  throttle_last_ = now;
  const double need = static_cast<double>(bytes);
  if (need > throttle_tokens_) {
    const double wait = (need - throttle_tokens_) / bps;
    stats_.throttle_wait_seconds += wait;
    std::this_thread::sleep_for(std::chrono::duration<double>(wait));
    throttle_last_ = mono_now();
  }
  throttle_tokens_ -= need;
}

void SocketComm::enqueue_data(int dest, int tag, std::span<const double> data) {
  FrameHeader h;
  h.kind = FrameKind::kData;
  h.src = cfg_.rank;
  h.tag = tag;
  h.count = data.size();
  const auto hdr = encode_frame_header(h);
  std::vector<std::byte> frame(hdr.size() + data.size() * sizeof(double));
  std::memcpy(frame.data(), hdr.data(), hdr.size());
  if (!data.empty())
    std::memcpy(frame.data() + hdr.size(), data.data(),
                data.size() * sizeof(double));
  throttle(frame.size());
  stats_.bytes_sent += static_cast<long long>(frame.size());
  Peer& p = peers_[static_cast<std::size_t>(dest)];
  if (p.closed)
    throw comm_error("rank " + std::to_string(cfg_.rank) + ": send to rank " +
                     std::to_string(dest) + " failed: connection closed");
  p.outbox.push_back(std::move(frame));
  flush_peer(dest);  // opportunistic; leftovers drain in progress()
}

void SocketComm::send(int dest, int tag, std::span<const double> data) {
  SLIPFLOW_REQUIRE(dest >= 0 && dest < cfg_.nranks);
  if (drop_remaining_ > 0 &&
      (cfg_.fault.drop_dest == -1 || cfg_.fault.drop_dest == dest) &&
      (cfg_.fault.drop_tag == -1 || cfg_.fault.drop_tag == tag)) {
    --drop_remaining_;
    ++stats_.frames_dropped;
    return;
  }
  if (cfg_.fault.send_delay > 0.0)
    std::this_thread::sleep_for(
        std::chrono::duration<double>(cfg_.fault.send_delay));
  ++stats_.messages_sent;
  if (dest == cfg_.rank) {
    mail_[{cfg_.rank, tag}].emplace_back(data.begin(), data.end());
    ++stats_.messages_received;
    return;
  }
  enqueue_data(dest, tag, data);
}

void SocketComm::flush_peer(int peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  while (!p.outbox.empty()) {
    const std::vector<std::byte>& buf = p.outbox.front();
    const ssize_t w = ::send(p.fd, buf.data() + p.out_off,
                             buf.size() - p.out_off,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (w > 0) {
      p.out_off += static_cast<std::size_t>(w);
      if (p.out_off == buf.size()) {
        p.outbox.pop_front();
        p.out_off = 0;
      }
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (w < 0 && errno == EINTR) continue;
    // EPIPE / ECONNRESET: the peer is gone; undeliverable output is
    // dropped and the next recv involving this peer reports it.
    p.closed = true;
    p.outbox.clear();
    p.out_off = 0;
    return;
  }
}

void SocketComm::drain_peer(int src) {
  Peer& p = peers_[static_cast<std::size_t>(src)];
  std::byte chunk[65536];
  for (;;) {
    const ssize_t r = ::read(p.fd, chunk, sizeof(chunk));
    if (r > 0) {
      p.inbuf.insert(p.inbuf.end(), chunk, chunk + r);
      if (static_cast<std::size_t>(r) == sizeof(chunk)) continue;
      break;
    }
    if (r == 0) {
      p.closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    p.closed = true;
    break;
  }
  // Parse complete frames off the accumulated buffer.
  while (p.inbuf.size() - p.in_off >= kFrameHeaderBytes) {
    const FrameHeader h = decode_frame_header(
        std::span<const std::byte>(p.inbuf).subspan(p.in_off));
    const std::size_t need =
        kFrameHeaderBytes + static_cast<std::size_t>(h.count) * sizeof(double);
    if (p.inbuf.size() - p.in_off < need) break;
    if (h.kind != FrameKind::kData || h.src != src)
      throw comm_error("rank " + std::to_string(cfg_.rank) +
                       ": unexpected frame from rank " + std::to_string(src));
    std::vector<double> payload(h.count);
    if (h.count > 0)
      std::memcpy(payload.data(), p.inbuf.data() + p.in_off + kFrameHeaderBytes,
                  payload.size() * sizeof(double));
    mail_[{src, h.tag}].push_back(std::move(payload));
    ++stats_.messages_received;
    stats_.bytes_received += static_cast<long long>(need);
    p.in_off += need;
  }
  if (p.in_off > 0) {
    p.inbuf.erase(p.inbuf.begin(),
                  p.inbuf.begin() + static_cast<std::ptrdiff_t>(p.in_off));
    p.in_off = 0;
  }
}

void SocketComm::progress(double max_wait_seconds) {
  std::vector<pollfd> pfds;
  std::vector<int> ranks;
  for (int s = 0; s < cfg_.nranks; ++s) {
    if (s == cfg_.rank) continue;
    Peer& p = peers_[static_cast<std::size_t>(s)];
    if (p.fd < 0 || p.closed) continue;
    short events = POLLIN;
    if (!p.outbox.empty()) events |= POLLOUT;
    pfds.push_back(pollfd{p.fd, events, 0});
    ranks.push_back(s);
  }
  if (pfds.empty()) {
    if (max_wait_seconds > 0.0)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(std::min(max_wait_seconds, 0.01)));
    return;
  }
  const int timeout_ms =
      max_wait_seconds <= 0.0
          ? 0
          : std::max(1, static_cast<int>(max_wait_seconds * 1000.0));
  const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) return;
    throw_errno("poll(progress)");
  }
  for (std::size_t i = 0; i < pfds.size(); ++i) {
    if (pfds[i].revents == 0) continue;
    if (pfds[i].revents & POLLOUT) flush_peer(ranks[i]);
    if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) drain_peer(ranks[i]);
  }
}

void SocketComm::throw_closed(int src, int tag) const {
  throw comm_error("rank " + std::to_string(cfg_.rank) +
                   ": connection to rank " + std::to_string(src) +
                   " closed while waiting for (src=" + std::to_string(src) +
                   ", tag=" + std::to_string(tag) + ")");
}

bool SocketComm::try_pop(int src, int tag, std::vector<double>& out) {
  const auto it = mail_.find({src, tag});
  if (it == mail_.end() || it->second.empty()) return false;
  out = std::move(it->second.front());
  it->second.pop_front();
  return true;
}

std::vector<double> SocketComm::recv(int src, int tag) {
  SLIPFLOW_REQUIRE(src >= 0 && src < cfg_.nranks);
  const double t0 = mono_now();
  const double timeout = cfg_.comm.recv_timeout;
  const double deadline =
      timeout > 0.0 ? t0 + timeout : std::numeric_limits<double>::infinity();
  for (;;) {
    std::vector<double> out;
    if (try_pop(src, tag, out)) {
      stats_.recv_wait_seconds += mono_now() - t0;
      return out;
    }
    if (src == cfg_.rank)
      throw comm_error("rank " + std::to_string(cfg_.rank) +
                       ": blocking self-recv with empty mailbox would "
                       "deadlock (tag " + std::to_string(tag) + ")");
    if (peers_[static_cast<std::size_t>(src)].closed) throw_closed(src, tag);
    const double now = mono_now();
    if (now >= deadline)
      throw comm_timeout(
          "rank " + std::to_string(cfg_.rank) + ": recv timeout after " +
          std::to_string(timeout) + "s waiting for (src=" +
          std::to_string(src) + ", tag=" + std::to_string(tag) + ")");
    progress(std::min(0.1, deadline - now));
  }
}

/// Completion = the matching frame has been drained into the mailbox.
/// test() makes progress (one zero-timeout poll pass) before giving up,
/// so a rank that only ever calls test() between compute chunks still
/// flushes its outboxes and drains arrivals. A dead peer surfaces from
/// test() as the same named comm_error a blocking recv would throw; a
/// pending self-receive just stays incomplete (the matching self-send
/// may come later from this same thread).
class SocketComm::Handle final : public RecvHandle {
 public:
  Handle(SocketComm& comm, int src, int tag)
      : comm_(comm), src_(src), tag_(tag) {}

  bool test() override {
    if (done_) return true;
    if (comm_.try_pop(src_, tag_, payload_)) return done_ = true;
    if (src_ != comm_.cfg_.rank) {
      comm_.progress(0.0);
      if (comm_.try_pop(src_, tag_, payload_)) return done_ = true;
      if (comm_.peers_[static_cast<std::size_t>(src_)].closed)
        comm_.throw_closed(src_, tag_);
    }
    return false;
  }

  std::vector<double> wait() override {
    if (!done_) {
      payload_ = comm_.recv(src_, tag_);
      done_ = true;
    }
    return std::move(payload_);
  }

 private:
  SocketComm& comm_;
  const int src_, tag_;
  bool done_ = false;
  std::vector<double> payload_;
};

RecvHandlePtr SocketComm::irecv(int src, int tag) {
  SLIPFLOW_REQUIRE(src >= 0 && src < cfg_.nranks);
  return std::make_unique<Handle>(*this, src, tag);
}

// det-lint: rank-ordered — delegates to binomial_allgather, which
// concatenates contributions by rank index (collectives.hpp).
std::vector<double> SocketComm::allgather(std::span<const double> mine) {
  return binomial_allgather(*this, mine);
}

void SocketComm::barrier() { (void)allgather({}); }

// det-lint: rank-ordered — folds the rank-ordered allgather result
// left to right in rank index order.
double SocketComm::allreduce_sum(double x) {
  const std::vector<double> all = allgather(std::span<const double>(&x, 1));
  double s = 0.0;
  for (double v : all) s += v;
  return s;
}

// det-lint: rank-ordered — max over the rank-ordered allgather.
double SocketComm::allreduce_max(double x) {
  const std::vector<double> all = allgather(std::span<const double>(&x, 1));
  double m = all.front();
  for (double v : all) m = v > m ? v : m;
  return m;
}

void SocketComm::note_progress(long long phase) {
  if (hb_) hb_->note_phase(phase);
  if (cfg_.fault.kill_at_phase >= 0 && phase >= cfg_.fault.kill_at_phase)
    ::raise(SIGKILL);
  if (cfg_.fault.stop_at_phase >= 0 && phase >= cfg_.fault.stop_at_phase)
    ::raise(SIGSTOP);
}

SocketStats SocketComm::stats() const {
  SocketStats s = stats_;
  s.heartbeats_sent = hb_ ? hb_->count() : 0;
  return s;
}

void SocketComm::publish_stats() {
  if (cfg_.metrics == nullptr) return;
  const SocketStats s = stats();
  obs::MetricsRegistry& reg = *cfg_.metrics;
  const int r = cfg_.rank;
  reg.add(r, "socket/bytes_sent", static_cast<double>(s.bytes_sent));
  reg.add(r, "socket/bytes_received", static_cast<double>(s.bytes_received));
  reg.add(r, "socket/messages_sent", static_cast<double>(s.messages_sent));
  reg.add(r, "socket/messages_received",
          static_cast<double>(s.messages_received));
  reg.add(r, "socket/heartbeats", static_cast<double>(s.heartbeats_sent));
  reg.add(r, "socket/frames_dropped", static_cast<double>(s.frames_dropped));
  reg.add(r, "socket/recv_wait_seconds", s.recv_wait_seconds);
  reg.add(r, "socket/throttle_wait_seconds", s.throttle_wait_seconds);
}

// ---------------------------------------------------------------------------
// Forked in-process harness.

void run_ranks_sockets(int nranks,
                       const std::function<void(Communicator&)>& fn,
                       const SocketRunOptions& opts) {
  SLIPFLOW_REQUIRE(fn != nullptr);
  namespace fs = std::filesystem;

  std::string dir = opts.dir;
  bool own_dir = false;
  if (dir.empty() && nranks > 1) {
    dir = make_socket_temp_dir();
    own_dir = true;
  }

  ForkRunOptions fopts;
  fopts.wall_timeout = opts.wall_timeout;
  fopts.who = "run_ranks_sockets";
  try {
    run_ranks_forked(
        nranks,
        [&](int r) {
          SocketCommConfig cfg;
          cfg.rank = r;
          cfg.nranks = nranks;
          cfg.dir = dir;
          cfg.comm = opts.comm;
          cfg.connect_timeout = opts.connect_timeout;
          if (opts.faults) cfg.fault = opts.faults(r);
          SocketComm comm(cfg);
          fn(comm);
        },
        fopts);
  } catch (...) {
    if (own_dir) {
      std::error_code ec;
      fs::remove_all(dir, ec);
    }
    throw;
  }
  if (own_dir) {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
}

}  // namespace slipflow::transport
