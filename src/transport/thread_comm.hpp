#pragma once
/// \file thread_comm.hpp
/// Threads-as-ranks transport: runs N ranks as N threads of this process,
/// each handed a Communicator endpoint backed by shared mailboxes.
///
/// This is the substitution for the paper's MPI cluster (see DESIGN.md):
/// the decomposition, message pattern, synchronization structure and the
/// remapping logic run unchanged; only the wire is a mutex-protected
/// queue instead of a Gigabit switch.

#include <functional>
#include <memory>

#include "transport/communicator.hpp"

namespace slipflow::transport {

namespace detail {
struct ThreadCommShared;
}

/// Runs `fn(comm)` on `nranks` concurrent threads, rank r getting a
/// Communicator with rank()==r. Blocks until every rank returns.
///
/// If any rank throws, the remaining ranks are allowed to finish or block
/// forever is avoided by the caller's protocol — rank functions should
/// only throw on programming errors. The first exception is rethrown to
/// the caller after all threads are joined; to keep joins from hanging,
/// an exception in one rank poisons the mailboxes so blocked receives in
/// other ranks throw too.
void run_ranks(int nranks, const std::function<void(Communicator&)>& fn);

/// As above, with shared options. With opts.recv_timeout > 0 a recv that
/// waits longer throws comm_timeout naming the pending (src, tag), so an
/// in-process deadlock fails diagnosably instead of hanging ctest.
void run_ranks(int nranks, const std::function<void(Communicator&)>& fn,
               const CommOptions& opts);

}  // namespace slipflow::transport
