#include "transport/launcher.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <thread>

#include "transport/fdio.hpp"
#include "transport/frame.hpp"
#include "transport/tempdir.hpp"
#include "util/require.hpp"

namespace slipflow::transport {

using fdio::mono_now;
using fdio::set_nonblocking;
using fdio::throw_errno;

namespace {

/// One accepted (but not yet rank-identified) or identified heartbeat
/// connection. Heartbeat frames are parsed with the shared frame codec.
struct HbConn {
  int fd = -1;
  int rank = -1;  ///< -1 until the first beat identifies the sender
  std::vector<std::byte> buf;
};

struct Worker {
  pid_t pid = -1;
  int err_fd = -1;
  bool done = false;
  int status = 0;
  std::string err;
  double last_beat = -1.0;
  long long last_phase = -1;
};

}  // namespace

LaunchResult launch_workers(const LaunchConfig& cfg) {
  SLIPFLOW_REQUIRE(cfg.ranks >= 1);
  SLIPFLOW_REQUIRE_MSG(!cfg.worker_command.empty(),
                       "launch_workers: empty worker command");
  namespace fs = std::filesystem;

  std::string dir = cfg.dir;
  bool own_dir = false;
  if (dir.empty()) {
    dir = make_socket_temp_dir();
    own_dir = true;
  }
  const std::string monitor_path = dir + "/monitor.sock";

  // Monitor listener first, so even the earliest worker can connect.
  const int listener = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listener < 0) throw_errno("socket(monitor)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  SLIPFLOW_REQUIRE_MSG(monitor_path.size() + 1 <= sizeof(addr.sun_path),
                       "monitor socket path too long: " << monitor_path);
  std::memcpy(addr.sun_path, monitor_path.c_str(), monitor_path.size() + 1);
  ::unlink(monitor_path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listener, cfg.ranks + 2) < 0) {
    const int err = errno;
    ::close(listener);
    errno = err;
    throw_errno("bind/listen(" + monitor_path + ")");
  }
  set_nonblocking(listener);

  const double t0 = mono_now();
  std::vector<Worker> workers(static_cast<std::size_t>(cfg.ranks));
  std::vector<HbConn> conns;

  // One session tag per launch: stale ring segments left in a reused dir
  // by a crashed earlier run carry a different tag and are re-created.
  const unsigned long long session =
      (static_cast<unsigned long long>(::getpid()) << 32) ^
      // det-lint: allow(wall-clock): session-uniqueness tag for stale
      // shm segment cleanup — an identifier, never a simulated value.
      static_cast<unsigned long long>(
          std::chrono::steady_clock::now().time_since_epoch().count());

  std::fflush(stdout);
  std::fflush(stderr);
  for (int r = 0; r < cfg.ranks; ++r) {
    std::vector<std::string> argv_s = cfg.worker_command;
    argv_s.push_back("--rank=" + std::to_string(r));
    argv_s.push_back("--ranks=" + std::to_string(cfg.ranks));
    argv_s.push_back("--socket-dir=" + dir);
    if (!cfg.transport.empty()) {
      argv_s.push_back("--transport=" + cfg.transport);
      if (cfg.transport != "socket") {
        argv_s.push_back("--shm-session=" + std::to_string(session));
        if (cfg.shm_ring_bytes > 0)
          argv_s.push_back("--shm-ring-bytes=" +
                           std::to_string(cfg.shm_ring_bytes));
      }
    }
    argv_s.push_back("--heartbeat-sock=" + monitor_path);
    argv_s.push_back("--heartbeat-interval=" +
                     std::to_string(cfg.heartbeat_interval));
    if (const auto it = cfg.extra_args.find(r); it != cfg.extra_args.end())
      for (const std::string& a : it->second) argv_s.push_back(a);

    int pipefd[2];
    if (::pipe(pipefd) < 0) throw_errno("pipe");
    const pid_t pid = ::fork();
    if (pid < 0) throw_errno("fork");
    if (pid == 0) {
      ::close(pipefd[0]);
      ::dup2(pipefd[1], 2);
      ::close(pipefd[1]);
      std::vector<char*> argv;
      argv.reserve(argv_s.size() + 1);
      for (std::string& s : argv_s) argv.push_back(s.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      std::fprintf(stderr, "rank %d: exec %s failed: %s\n", r, argv[0],
                   std::strerror(errno));
      ::_exit(127);
    }
    ::close(pipefd[1]);
    set_nonblocking(pipefd[0]);
    workers[static_cast<std::size_t>(r)].pid = pid;
    workers[static_cast<std::size_t>(r)].err_fd = pipefd[0];
  }

  LaunchResult result;
  result.last_phase.assign(static_cast<std::size_t>(cfg.ranks), -1);

  auto fail = [&](int rank, const std::string& why) {
    if (!result.ok && !result.diagnostic.empty()) return;  // keep first
    result.failed_rank = rank;
    result.diagnostic = why;
  };

  auto drain_stderr = [&] {
    char buf[4096];
    for (Worker& w : workers) {
      if (w.err_fd < 0) continue;
      for (;;) {
        const ssize_t n = ::read(w.err_fd, buf, sizeof(buf));
        if (n > 0) {
          w.err.append(buf, static_cast<std::size_t>(n));
          continue;
        }
        if (n == 0) {
          ::close(w.err_fd);
          w.err_fd = -1;
        }
        break;
      }
    }
  };

  auto pump_heartbeats = [&] {
    for (;;) {
      const int fd = ::accept(listener, nullptr, nullptr);
      if (fd < 0) break;
      set_nonblocking(fd);
      conns.push_back(HbConn{fd, -1, {}});
    }
    char buf[4096];
    for (HbConn& c : conns) {
      if (c.fd < 0) continue;
      for (;;) {
        const ssize_t n = ::read(c.fd, buf, sizeof(buf));
        if (n > 0) {
          c.buf.insert(c.buf.end(), reinterpret_cast<std::byte*>(buf),
                       reinterpret_cast<std::byte*>(buf) + n);
          continue;
        }
        if (n == 0) {
          ::close(c.fd);
          c.fd = -1;
        }
        break;
      }
      std::size_t off = 0;
      while (c.buf.size() - off >= kFrameHeaderBytes) {
        FrameHeader h;
        try {
          h = decode_frame_header(
              std::span<const std::byte>(c.buf).subspan(off));
        } catch (const comm_error&) {
          ::close(c.fd);
          c.fd = -1;
          break;
        }
        const std::size_t need = kFrameHeaderBytes +
                                 static_cast<std::size_t>(h.count) *
                                     sizeof(double);
        if (c.buf.size() - off < need) break;
        if (h.kind == FrameKind::kHeartbeat && h.src >= 0 &&
            h.src < cfg.ranks) {
          c.rank = h.src;
          Worker& w = workers[static_cast<std::size_t>(h.src)];
          w.last_beat = mono_now();
          if (h.count >= 1) {
            double phase = 0.0;
            std::memcpy(&phase, c.buf.data() + off + kFrameHeaderBytes,
                        sizeof(double));
            const long long p = static_cast<long long>(phase);
            if (p != w.last_phase && cfg.on_progress) cfg.on_progress(h.src, p);
            w.last_phase = p;
          }
        }
        off += need;
      }
      if (off > 0)
        c.buf.erase(c.buf.begin(),
                    c.buf.begin() + static_cast<std::ptrdiff_t>(off));
    }
  };

  auto kill_all = [&] {
    for (Worker& w : workers) {
      if (w.done) continue;
      ::kill(w.pid, SIGCONT);  // a SIGSTOPped worker ignores SIGKILL queueing
      ::kill(w.pid, SIGKILL);
    }
    for (Worker& w : workers) {
      if (w.done) continue;
      ::waitpid(w.pid, &w.status, 0);
      w.done = true;
    }
  };

  const double deadline = t0 + cfg.wall_clock_timeout;
  int running = cfg.ranks;
  bool failed = false;
  while (running > 0 && !failed) {
    pump_heartbeats();
    drain_stderr();
    if (cfg.on_tick) cfg.on_tick();

    // Reap exits. When several workers die in one tick, blame the one
    // that was signalled — the injected fault — not the peers that then
    // failed with transport errors.
    int first_signaled = -1, first_nonzero = -1;
    for (int r = 0; r < cfg.ranks; ++r) {
      Worker& w = workers[static_cast<std::size_t>(r)];
      if (w.done) continue;
      int status = 0;
      const pid_t got = ::waitpid(w.pid, &status, WNOHANG);
      if (got != w.pid) continue;
      w.done = true;
      w.status = status;
      --running;
      if (WIFSIGNALED(status) && first_signaled < 0) first_signaled = r;
      if (WIFEXITED(status) && WEXITSTATUS(status) != 0 && first_nonzero < 0)
        first_nonzero = r;
    }
    if (first_signaled >= 0) {
      const Worker& w = workers[static_cast<std::size_t>(first_signaled)];
      fail(first_signaled,
           "rank " + std::to_string(first_signaled) + " killed by signal " +
               std::to_string(WTERMSIG(w.status)) +
               " (last reported phase " + std::to_string(w.last_phase) + ")");
      failed = true;
    } else if (first_nonzero >= 0) {
      const Worker& w = workers[static_cast<std::size_t>(first_nonzero)];
      fail(first_nonzero,
           "rank " + std::to_string(first_nonzero) + " exited with code " +
               std::to_string(WEXITSTATUS(w.status)) +
               " (last reported phase " + std::to_string(w.last_phase) + ")");
      failed = true;
    }
    if (failed) break;

    if (cfg.heartbeat_grace > 0.0) {
      const double now = mono_now();
      for (int r = 0; r < cfg.ranks; ++r) {
        const Worker& w = workers[static_cast<std::size_t>(r)];
        if (w.done) continue;
        const double since =
            w.last_beat >= 0.0 ? now - w.last_beat : now - t0;
        if (since > cfg.heartbeat_grace) {
          fail(r, "rank " + std::to_string(r) + " heartbeat silent for " +
                      std::to_string(since) + "s (last reported phase " +
                      std::to_string(w.last_phase) + ")");
          failed = true;
          break;
        }
      }
    }
    if (failed) break;

    if (mono_now() >= deadline) {
      std::ostringstream os;
      os << "wall-clock timeout after " << cfg.wall_clock_timeout
         << "s; per-rank last phases:";
      for (int r = 0; r < cfg.ranks; ++r)
        os << " rank" << r << "="
           << workers[static_cast<std::size_t>(r)].last_phase;
      fail(-1, os.str());
      failed = true;
      break;
    }
    if (running > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  if (failed) kill_all();
  pump_heartbeats();
  drain_stderr();
  for (Worker& w : workers)
    if (w.err_fd >= 0) ::close(w.err_fd);
  for (HbConn& c : conns)
    if (c.fd >= 0) ::close(c.fd);
  ::close(listener);
  ::unlink(monitor_path.c_str());
  if (own_dir) {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }

  result.elapsed_seconds = mono_now() - t0;
  for (int r = 0; r < cfg.ranks; ++r)
    result.last_phase[static_cast<std::size_t>(r)] =
        workers[static_cast<std::size_t>(r)].last_phase;
  if (!failed) {
    // The loop above can exit with running == 0 but a straggler having
    // exited nonzero in the very last reap — recheck all statuses.
    for (int r = 0; r < cfg.ranks; ++r) {
      const Worker& w = workers[static_cast<std::size_t>(r)];
      if (WIFSIGNALED(w.status)) {
        fail(r, "rank " + std::to_string(r) + " killed by signal " +
                    std::to_string(WTERMSIG(w.status)));
        failed = true;
      } else if (WIFEXITED(w.status) && WEXITSTATUS(w.status) != 0) {
        fail(r, "rank " + std::to_string(r) + " exited with code " +
                    std::to_string(WEXITSTATUS(w.status)));
        failed = true;
      }
    }
  }
  result.ok = !failed;
  if (failed) {
    std::ostringstream os;
    os << result.diagnostic;
    for (int r = 0; r < cfg.ranks; ++r) {
      const std::string& e = workers[static_cast<std::size_t>(r)].err;
      if (!e.empty()) os << "\n--- rank " << r << " stderr ---\n" << e;
    }
    result.diagnostic = os.str();
  }
  return result;
}

}  // namespace slipflow::transport
