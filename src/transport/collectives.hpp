#pragma once
/// \file collectives.hpp
/// Deterministic collectives built from point-to-point send/recv,
/// shared by the real-process transports (SocketComm, ShmComm).
///
/// allgather runs as a binomial gather tree to rank 0 followed by a
/// binomial broadcast, concatenating contributions in rank order — the
/// exact layout ThreadComm's shared-memory allgather produces. Because
/// both process transports delegate here, their collective results are
/// byte-identical to each other by construction, not by coincidence.

#include <map>
#include <span>
#include <vector>

#include "transport/communicator.hpp"

namespace slipflow::transport {

/// Reserved tags of the collective trees; user tags are non-negative.
inline constexpr int kTagGatherTree = -101;
inline constexpr int kTagBcastTree = -102;

/// Rank-ordered allgather over `comm`'s point-to-point primitives.
/// Handles ragged per-rank contribution sizes exactly.
// det-lint: rank-ordered — contributions are keyed by rank in an
// ordered map and concatenated 0..n-1 regardless of arrival order.
inline std::vector<double> binomial_allgather(Communicator& comm,
                                              std::span<const double> mine) {
  const int n = comm.size();
  const int me = comm.rank();
  if (n == 1) return {mine.begin(), mine.end()};

  // Binomial gather toward rank 0. Each message packs the sender's
  // collected contiguous rank range as [k, (rank_i, count_i)*k, payloads
  // in listed order], which keeps ragged contribution sizes exact.
  std::map<int, std::vector<double>> parts;
  parts[me] = {mine.begin(), mine.end()};
  for (int step = 1; step < n; step <<= 1) {
    if (me & step) {
      std::vector<double> msg;
      msg.push_back(static_cast<double>(parts.size()));
      for (const auto& [r, v] : parts) {
        msg.push_back(static_cast<double>(r));
        msg.push_back(static_cast<double>(v.size()));
      }
      for (const auto& [r, v] : parts) {
        (void)r;
        msg.insert(msg.end(), v.begin(), v.end());
      }
      comm.send(me - step, kTagGatherTree, msg);
      parts.clear();
      break;
    }
    if (me + step < n) {
      const std::vector<double> msg = comm.recv(me + step, kTagGatherTree);
      SLIPFLOW_REQUIRE(!msg.empty());
      const auto k = static_cast<std::size_t>(msg[0]);
      std::size_t off = 1 + 2 * k;
      for (std::size_t i = 0; i < k; ++i) {
        const int r = static_cast<int>(msg[1 + 2 * i]);
        const auto cnt = static_cast<std::size_t>(msg[2 + 2 * i]);
        SLIPFLOW_REQUIRE(r >= 0 && r < n && off + cnt <= msg.size());
        parts[r].assign(msg.begin() + static_cast<std::ptrdiff_t>(off),
                        msg.begin() + static_cast<std::ptrdiff_t>(off + cnt));
        off += cnt;
      }
    }
  }

  // Rank 0 concatenates in rank order, then a binomial broadcast.
  std::vector<double> result;
  if (me == 0) {
    SLIPFLOW_REQUIRE_MSG(static_cast<int>(parts.size()) == n,
                         "allgather: missing contributions");
    for (int r = 0; r < n; ++r) {
      const auto& v = parts.at(r);
      result.insert(result.end(), v.begin(), v.end());
    }
  }
  int rounds = 0;
  while ((1 << rounds) < n) ++rounds;
  bool have = me == 0;
  for (int step = 1 << (rounds - 1); step >= 1; step >>= 1) {
    if (have && me % (2 * step) == 0 && me + step < n)
      comm.send(me + step, kTagBcastTree, result);
    else if (!have && me % (2 * step) == step) {
      result = comm.recv(me - step, kTagBcastTree);
      have = true;
    }
  }
  return result;
}

}  // namespace slipflow::transport
