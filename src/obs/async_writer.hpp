#pragma once
/// \file async_writer.hpp
/// AsyncWriter — a background writer thread that takes whole-file and
/// positional write jobs off the simulation's critical path, so no LBM
/// phase ever blocks on disk.
///
/// The contract is double-buffered snapshotting: the simulation packs a
/// snapshot (VTK text, checkpoint planes, metrics) into a buffer — ask
/// take_buffer() for a recycled one — submits it, and immediately keeps
/// stepping while the writer thread does the I/O. submit never loses an
/// accepted job: the destructor drains the queue before joining. The
/// queue is bounded by bytes; a submit that would exceed the bound
/// blocks until the writer catches up (backpressure beats unbounded
/// memory growth). Writer-side errors are captured and rethrown from
/// the next flush(), which is also the rendezvous point before reading
/// a file back or ending the run.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace slipflow::obs {

/// Writer-thread counters (see publish()).
struct AsyncWriterStats {
  long long jobs_written = 0;
  long long bytes_written = 0;
  long long bytes_queued = 0;  ///< total bytes ever accepted by submit
  double write_seconds = 0.0;  ///< wall time the writer spent in I/O
  double submit_block_seconds = 0.0;  ///< caller time lost to backpressure
};

class AsyncWriter {
 public:
  explicit AsyncWriter(std::size_t max_queue_bytes = std::size_t{256} << 20);
  /// Drains every accepted job, then joins. Errors found during the
  /// drain are swallowed (teardown must not throw) — call flush() first
  /// when you need them.
  ~AsyncWriter();

  AsyncWriter(const AsyncWriter&) = delete;
  AsyncWriter& operator=(const AsyncWriter&) = delete;

  /// Replace `path` with `bytes` (create/truncate + write).
  void submit_file(std::string path, std::vector<std::byte> bytes);
  void submit_file(std::string path, std::string bytes);
  /// Positional write into an existing file (pwrite at `offset`); the
  /// file must already be sized — see lbm::begin_checkpoint.
  void submit_pwrite(std::string path, std::uint64_t offset,
                     std::vector<std::byte> bytes);
  /// Block until every accepted job is on disk, then rethrow the first
  /// writer error (as comm-agnostic std::runtime_error), if any.
  void flush();

  /// A recycled buffer from a completed job (empty when none are
  /// waiting) — reusing it makes snapshotting double-buffered instead
  /// of allocating per snapshot.
  std::vector<std::byte> take_buffer();

  AsyncWriterStats stats() const;
  /// Publish `time/io_async` (writer wall time in I/O) and
  /// `io/bytes_queued` counters into shard `rank`. Call from the shard
  /// owner's thread, once, after the run.
  void publish(MetricsRegistry& reg, int rank) const;

 private:
  struct Job {
    std::string path;
    std::uint64_t offset = 0;
    bool positional = false;
    std::vector<std::byte> bytes;
  };

  void writer_loop();
  void enqueue(Job job);

  const std::size_t max_queue_bytes_;
  mutable std::mutex mu_;
  std::condition_variable cv_submit_;  ///< signaled when queue shrinks
  std::condition_variable cv_work_;    ///< signaled when work arrives
  std::deque<Job> queue_;
  std::size_t queued_bytes_ = 0;
  bool stop_ = false;
  bool busy_ = false;  ///< writer mid-job (queue empty but not idle)
  std::string error_;  ///< first writer-side failure, "" = none
  std::deque<std::vector<std::byte>> pool_;
  AsyncWriterStats stats_;
  std::thread thread_;
};

}  // namespace slipflow::obs
