#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>
#include <set>

#include "util/json.hpp"

namespace slipflow::obs {

MetricsRegistry::MetricsRegistry(int ranks, bool keep_spans)
    : keep_spans_(keep_spans) {
  SLIPFLOW_REQUIRE(ranks >= 1);
  shards_.resize(static_cast<std::size_t>(ranks));
}

void MetricsRegistry::add(int rank, std::string_view name, double delta) {
  auto& m = shard(rank).counters;
  const auto it = m.find(name);
  if (it == m.end())
    m.emplace(std::string(name), delta);
  else
    it->second += delta;
}

void MetricsRegistry::set(int rank, std::string_view name, double value) {
  auto& m = shard(rank).gauges;
  const auto it = m.find(name);
  if (it == m.end())
    m.emplace(std::string(name), value);
  else
    it->second = value;
}

void MetricsRegistry::observe(int rank, std::string_view name, double value) {
  auto& m = shard(rank).histograms;
  const auto it = m.find(name);
  if (it == m.end()) {
    m.emplace(std::string(name), HistogramSummary{1, value, value, value});
  } else {
    HistogramSummary& h = it->second;
    h.count += 1;
    h.sum += value;
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
}

void MetricsRegistry::record_span(int rank, std::string_view name,
                                  double begin, double end, long long phase) {
  SLIPFLOW_REQUIRE_MSG(end >= begin, "span '" << name << "' ends before it begins");
  add(rank, "time/" + std::string(name), end - begin);
  if (keep_spans_)
    shard(rank).spans.push_back(
        TraceSpan{std::string(name), begin, end, phase});
}

double MetricsRegistry::counter(int rank, std::string_view name) const {
  const auto& m = shard(rank).counters;
  const auto it = m.find(name);
  return it == m.end() ? 0.0 : it->second;
}

double MetricsRegistry::counter_total(std::string_view name) const {
  double total = 0.0;
  for (int r = 0; r < ranks(); ++r) total += counter(r, name);
  return total;
}

bool MetricsRegistry::has_gauge(int rank, std::string_view name) const {
  const auto& m = shard(rank).gauges;
  return m.find(name) != m.end();
}

double MetricsRegistry::gauge(int rank, std::string_view name) const {
  const auto& m = shard(rank).gauges;
  const auto it = m.find(name);
  SLIPFLOW_REQUIRE_MSG(it != m.end(), "no gauge '" << name << "' on rank " << rank);
  return it->second;
}

HistogramSummary MetricsRegistry::histogram(int rank,
                                            std::string_view name) const {
  const auto& m = shard(rank).histograms;
  const auto it = m.find(name);
  return it == m.end() ? HistogramSummary{} : it->second;
}

const std::vector<TraceSpan>& MetricsRegistry::spans(int rank) const {
  return shard(rank).spans;
}

namespace {
template <typename Map>
void collect_names(const std::vector<const Map*>& maps,
                   std::vector<std::string>& out) {
  std::set<std::string> names;
  for (const Map* m : maps)
    for (const auto& kv : *m) names.insert(kv.first);
  out.assign(names.begin(), names.end());
}
}  // namespace

std::vector<std::string> MetricsRegistry::counter_names() const {
  std::vector<const std::map<std::string, double, std::less<>>*> maps;
  for (const Shard& s : shards_) maps.push_back(&s.counters);
  std::vector<std::string> out;
  collect_names(maps, out);
  return out;
}

std::vector<std::string> MetricsRegistry::gauge_names() const {
  std::vector<const std::map<std::string, double, std::less<>>*> maps;
  for (const Shard& s : shards_) maps.push_back(&s.gauges);
  std::vector<std::string> out;
  collect_names(maps, out);
  return out;
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  std::vector<const std::map<std::string, HistogramSummary, std::less<>>*> maps;
  for (const Shard& s : shards_) maps.push_back(&s.histograms);
  std::vector<std::string> out;
  collect_names(maps, out);
  return out;
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  os << "kind,rank,name,value,count,min,max\n";
  for (int r = 0; r < ranks(); ++r)
    for (const auto& [name, v] : shard(r).counters)
      os << "counter," << r << ',' << name << ',' << util::json_number(v)
         << ",,,\n";
  for (int r = 0; r < ranks(); ++r)
    for (const auto& [name, v] : shard(r).gauges)
      os << "gauge," << r << ',' << name << ',' << util::json_number(v)
         << ",,,\n";
  for (int r = 0; r < ranks(); ++r)
    for (const auto& [name, h] : shard(r).histograms)
      os << "histogram," << r << ',' << name << ','
         << util::json_number(h.sum) << ',' << h.count << ','
         << util::json_number(h.min) << ',' << util::json_number(h.max)
         << '\n';
}

void MetricsRegistry::write_summary_json(std::ostream& os) const {
  const auto counters = counter_names();
  const auto gauges = gauge_names();
  const auto hists = histogram_names();

  os << "{\n  \"ranks\": " << ranks() << ",\n  \"totals\": {";
  bool first = true;
  for (const std::string& name : counters) {
    os << (first ? "\n" : ",\n") << "    " << util::json_string(name) << ": "
       << util::json_number(counter_total(name));
    first = false;
  }
  os << "\n  },\n  \"per_rank\": [";
  for (int r = 0; r < ranks(); ++r) {
    os << (r == 0 ? "\n" : ",\n") << "    {\"rank\": " << r;
    for (const std::string& name : counters)
      os << ", " << util::json_string(name) << ": "
         << util::json_number(counter(r, name));
    for (const std::string& name : gauges)
      if (has_gauge(r, name))
        os << ", " << util::json_string(name) << ": "
           << util::json_number(gauge(r, name));
    for (const std::string& name : hists) {
      const HistogramSummary h = histogram(r, name);
      if (h.count == 0) continue;
      os << ", " << util::json_string(name + "/count") << ": " << h.count
         << ", " << util::json_string(name + "/mean") << ": "
         << util::json_number(h.sum / static_cast<double>(h.count))
         << ", " << util::json_string(name + "/max") << ": "
         << util::json_number(h.max);
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
}

void write_chrome_trace(const MetricsRegistry& reg, std::ostream& os,
                        const std::string& process_name) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  os << "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":"
     << util::json_string(process_name) << "}}";
  for (int r = 0; r < reg.ranks(); ++r)
    os << ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":" << r
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"rank " << r
       << "\"}}";
  for (int r = 0; r < reg.ranks(); ++r) {
    for (const TraceSpan& s : reg.spans(r)) {
      os << ",\n{\"ph\":\"X\",\"pid\":0,\"tid\":" << r << ",\"name\":"
         << util::json_string(s.name) << ",\"cat\":\"stage\",\"ts\":"
         << util::json_number(s.begin * 1e6) << ",\"dur\":"
         << util::json_number((s.end - s.begin) * 1e6);
      if (s.phase >= 0) os << ",\"args\":{\"phase\":" << s.phase << "}";
      os << "}";
    }
  }
  os << "\n]}\n";
}

std::size_t write_chrome_trace_events(const MetricsRegistry& reg,
                                      std::ostream& os, int rank,
                                      std::size_t first_span) {
  const std::vector<TraceSpan>& spans = reg.spans(rank);
  for (std::size_t i = first_span; i < spans.size(); ++i) {
    const TraceSpan& s = spans[i];
    os << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << rank << ",\"name\":"
       << util::json_string(s.name) << ",\"cat\":\"stage\",\"ts\":"
       << util::json_number(s.begin * 1e6) << ",\"dur\":"
       << util::json_number((s.end - s.begin) * 1e6);
    if (s.phase >= 0) os << ",\"args\":{\"phase\":" << s.phase << "}";
    os << "}\n";
  }
  return spans.size();
}

}  // namespace slipflow::obs
