#include "obs/profiler.hpp"

namespace slipflow::obs {

PhaseProfiler::PhaseProfiler(MetricsRegistry* registry, int rank,
                             std::shared_ptr<Clock> clock)
    : rank_(rank), clock_(std::move(clock)) {
  if (registry == nullptr) {
    owned_ = std::make_unique<MetricsRegistry>(1);
    registry_ = owned_.get();
    rank_ = 0;
  } else {
    SLIPFLOW_REQUIRE(rank >= 0 && rank < registry->ranks());
    registry_ = registry;
  }
  if (!clock_) clock_ = std::make_shared<WallClock>();
}

}  // namespace slipflow::obs
