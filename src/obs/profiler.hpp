#pragma once
/// \file profiler.hpp
/// PhaseProfiler — the per-rank front door to the observability layer.
///
/// A profiler binds (registry shard, rank, clock). Runners time their
/// stages through it instead of through util::Stopwatch, which is what
/// makes the time source injectable: the thread-parallel runner defaults
/// to WallClock, tests inject CountingClock for determinism, and the
/// virtual cluster records spans directly in virtual seconds.

#include <memory>
#include <string>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"

namespace slipflow::obs {

class PhaseProfiler {
 public:
  /// \param registry  sink for spans/counters; when null the profiler
  ///                  owns a private single-shard registry (rank 0), so
  ///                  instrumented code never needs a null check.
  /// \param rank      shard index in `registry`
  /// \param clock     time source; null means a fresh WallClock.
  PhaseProfiler(MetricsRegistry* registry, int rank,
                std::shared_ptr<Clock> clock = nullptr);

  Clock& clock() { return *clock_; }
  double now() { return clock_->now(); }

  MetricsRegistry& registry() { return *registry_; }
  const MetricsRegistry& registry() const { return *registry_; }
  int rank() const { return rank_; }

  /// The LBM phase subsequent spans/counters belong to (1-based).
  void begin_phase(long long phase) { phase_ = phase; }
  long long phase() const { return phase_; }

  /// Record a span measured externally (begin/end from this->now()).
  void record_span(std::string_view name, double begin, double end) {
    registry_->record_span(rank_, name, begin, end, phase_);
  }

  void add(std::string_view name, double delta) {
    registry_->add(rank_, name, delta);
  }
  void set(std::string_view name, double value) {
    registry_->set(rank_, name, value);
  }
  void observe(std::string_view name, double value) {
    registry_->observe(rank_, name, value);
  }

  /// RAII stage timer. `stop()` records the span and returns its
  /// duration; the destructor records it if stop() was never called.
  class Stage {
   public:
    Stage(PhaseProfiler& prof, std::string name)
        : prof_(&prof), name_(std::move(name)), begin_(prof.now()) {}
    Stage(const Stage&) = delete;
    Stage& operator=(const Stage&) = delete;
    Stage(Stage&& o) noexcept
        : prof_(o.prof_), name_(std::move(o.name_)), begin_(o.begin_) {
      o.prof_ = nullptr;
    }
    Stage& operator=(Stage&&) = delete;

    double stop() {
      if (prof_ == nullptr) return 0.0;  // second stop() / moved-from
      PhaseProfiler* p = prof_;
      prof_ = nullptr;
      const double end = p->now();
      p->record_span(name_, begin_, end);
      return end - begin_;
    }

    ~Stage() {
      if (prof_ != nullptr) stop();
    }

   private:
    PhaseProfiler* prof_;
    std::string name_;
    double begin_;
  };

  Stage stage(std::string name) { return Stage(*this, std::move(name)); }

 private:
  std::unique_ptr<MetricsRegistry> owned_;  // when constructed with null
  MetricsRegistry* registry_;
  int rank_;
  std::shared_ptr<Clock> clock_;
  long long phase_ = -1;
};

}  // namespace slipflow::obs
