#pragma once
/// \file clock.hpp
/// Injectable time sources for the observability layer.
///
/// Every consumer of time in the instrumented runners goes through a
/// Clock so that (a) the virtual cluster records *virtual* seconds and
/// its exports are bit-deterministic, and (b) tests can replace wall
/// time with a deterministic source so CI scheduling noise never feeds
/// the load predictors (see sim/parallel_lbm.cpp).

#include <chrono>
#include <functional>
#include <memory>

namespace slipflow::obs {

/// Monotonic time source reporting seconds since an arbitrary epoch.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double now() = 0;
};

/// Real wall time (steady_clock), epoch at construction.
class WallClock final : public Clock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}
  double now() override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Externally driven time — the virtual-cluster pattern: the simulation
/// advances the clock explicitly and every read sees the same value.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(double start = 0.0) : t_(start) {}
  double now() override { return t_; }
  void set(double t) { t_ = t; }
  void advance(double dt) { t_ += dt; }

 private:
  double t_;
};

/// Deterministic fake for tests: every now() call advances time by a
/// fixed step, so "measured" stage durations depend only on the call
/// sequence, never on the machine. Inject one per rank to make the
/// thread-parallel runner's load predictions reproducible.
class CountingClock final : public Clock {
 public:
  explicit CountingClock(double step = 1e-3) : step_(step) {}
  double now() override { return t_ += step_; }

 private:
  double t_ = 0.0;
  double step_;
};

/// Factory signature used by the runners: rank -> that rank's clock.
using ClockFactory = std::function<std::shared_ptr<Clock>(int rank)>;

}  // namespace slipflow::obs
