#include "obs/async_writer.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace slipflow::obs {

namespace {

double mono_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void write_all(int fd, const std::byte* data, std::size_t n,
               std::uint64_t offset, bool positional,
               const std::string& path) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w =
        positional ? ::pwrite(fd, data + off, n - off,
                              static_cast<off_t>(offset + off))
                   : ::write(fd, data + off, n - off);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    throw std::runtime_error("async writer: write to " + path + " failed: " +
                             std::strerror(errno));
  }
}

}  // namespace

AsyncWriter::AsyncWriter(std::size_t max_queue_bytes)
    : max_queue_bytes_(max_queue_bytes) {
  thread_ = std::thread([this] { writer_loop(); });
}

AsyncWriter::~AsyncWriter() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  thread_.join();
}

void AsyncWriter::enqueue(Job job) {
  const std::size_t n = job.bytes.size();
  std::unique_lock<std::mutex> lk(mu_);
  if (!error_.empty())
    // The writer is broken; accepting more work would only hide it.
    throw std::runtime_error(error_);
  if (queued_bytes_ + n > max_queue_bytes_) {
    const double t0 = mono_now();
    cv_submit_.wait(lk, [&] {
      return queued_bytes_ + n <= max_queue_bytes_ || !error_.empty();
    });
    stats_.submit_block_seconds += mono_now() - t0;
    if (!error_.empty()) throw std::runtime_error(error_);
  }
  queued_bytes_ += n;
  stats_.bytes_queued += static_cast<long long>(n);
  queue_.push_back(std::move(job));
  lk.unlock();
  cv_work_.notify_one();
}

void AsyncWriter::submit_file(std::string path, std::vector<std::byte> bytes) {
  enqueue(Job{std::move(path), 0, false, std::move(bytes)});
}

void AsyncWriter::submit_file(std::string path, std::string bytes) {
  std::vector<std::byte> b(bytes.size());
  std::memcpy(b.data(), bytes.data(), bytes.size());
  enqueue(Job{std::move(path), 0, false, std::move(b)});
}

void AsyncWriter::submit_pwrite(std::string path, std::uint64_t offset,
                                std::vector<std::byte> bytes) {
  enqueue(Job{std::move(path), offset, true, std::move(bytes)});
}

void AsyncWriter::flush() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_submit_.wait(lk, [&] {
    return (queue_.empty() && !busy_) || !error_.empty();
  });
  if (!error_.empty()) throw std::runtime_error(error_);
}

std::vector<std::byte> AsyncWriter::take_buffer() {
  std::lock_guard<std::mutex> lk(mu_);
  if (pool_.empty()) return {};
  std::vector<std::byte> b = std::move(pool_.front());
  pool_.pop_front();
  b.clear();
  return b;
}

AsyncWriterStats AsyncWriter::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void AsyncWriter::publish(MetricsRegistry& reg, int rank) const {
  const AsyncWriterStats s = stats();
  reg.add(rank, "time/io_async", s.write_seconds);
  reg.add(rank, "io/bytes_queued", static_cast<double>(s.bytes_queued));
  reg.add(rank, "io/jobs_written", static_cast<double>(s.jobs_written));
  reg.add(rank, "io/submit_block_seconds", s.submit_block_seconds);
}

void AsyncWriter::writer_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      // Drain everything before honoring stop: accepted jobs are never
      // lost.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    std::string error;
    const double t0 = mono_now();
    try {
      const int flags = job.positional ? O_WRONLY | O_CLOEXEC
                                       : O_WRONLY | O_CREAT | O_TRUNC |
                                             O_CLOEXEC;
      const int fd = ::open(job.path.c_str(), flags, 0644);
      if (fd < 0)
        throw std::runtime_error("async writer: cannot open " + job.path +
                                 ": " + std::strerror(errno));
      try {
        write_all(fd, job.bytes.data(), job.bytes.size(), job.offset,
                  job.positional, job.path);
      } catch (...) {
        ::close(fd);
        throw;
      }
      ::close(fd);
    } catch (const std::exception& e) {
      error = e.what();
    }
    const double dt = mono_now() - t0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      busy_ = false;
      queued_bytes_ -= job.bytes.size();
      stats_.write_seconds += dt;
      if (error.empty()) {
        ++stats_.jobs_written;
        stats_.bytes_written += static_cast<long long>(job.bytes.size());
      } else if (error_.empty()) {
        error_ = error;
      }
      // Recycle the buffer for the next snapshot (double buffering);
      // keep the pool small — two buffers cover the steady state.
      if (pool_.size() < 2) pool_.push_back(std::move(job.bytes));
    }
    cv_submit_.notify_all();
  }
}

}  // namespace slipflow::obs
