#pragma once
/// \file metrics.hpp
/// MetricsRegistry — the per-rank metric store behind every instrumented
/// runner: named counters (monotonic sums), gauges (last value written),
/// histograms (count/sum/min/max summaries), and timeline spans for the
/// Chrome trace export.
///
/// Sharding contract: the registry is created with a fixed rank count
/// and each shard is written by exactly ONE thread (the rank's own
/// thread in the thread-parallel runner; the single simulation thread
/// in the virtual cluster). Under that contract no locking is needed on
/// the hot path. Readers (exporters, tests) run after the writers have
/// joined. Exports are deterministic: metrics are kept in ordered maps
/// and spans in recording order, so identical runs serialize to
/// identical bytes.

#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/require.hpp"

namespace slipflow::obs {

/// Count/sum/min/max summary of observed samples.
struct HistogramSummary {
  long long count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// One closed interval on a rank's timeline (seconds; wall or virtual,
/// whatever the recording clock produced). `phase` is the 1-based LBM
/// phase it belongs to, or -1 when not phase-scoped.
struct TraceSpan {
  std::string name;
  double begin = 0.0;
  double end = 0.0;
  long long phase = -1;
};

class MetricsRegistry {
 public:
  /// \param ranks       number of shards (>= 1)
  /// \param keep_spans  when false, record_span still accumulates the
  ///                    `time/<name>` counter but drops the timeline —
  ///                    the cheap mode for long runs that only need
  ///                    totals, not a trace.
  explicit MetricsRegistry(int ranks, bool keep_spans = true);

  int ranks() const { return static_cast<int>(shards_.size()); }
  bool keeps_spans() const { return keep_spans_; }

  // --- writers (one thread per rank) ---
  void add(int rank, std::string_view name, double delta);
  void set(int rank, std::string_view name, double value);
  void observe(int rank, std::string_view name, double value);
  /// Record a timeline span and fold its duration into the counter
  /// `time/<name>`.
  void record_span(int rank, std::string_view name, double begin, double end,
                   long long phase = -1);

  // --- readers (after writers are done) ---
  double counter(int rank, std::string_view name) const;       ///< 0 if absent
  double counter_total(std::string_view name) const;           ///< sum over ranks
  bool has_gauge(int rank, std::string_view name) const;
  double gauge(int rank, std::string_view name) const;         ///< requires present
  HistogramSummary histogram(int rank, std::string_view name) const;
  const std::vector<TraceSpan>& spans(int rank) const;

  /// All counter / gauge / histogram names present in any shard, sorted.
  std::vector<std::string> counter_names() const;
  std::vector<std::string> gauge_names() const;
  std::vector<std::string> histogram_names() const;

  /// Flat CSV of every metric:
  ///   kind,rank,name,value,count,min,max
  /// with `value` the counter value / gauge value / histogram sum.
  /// Rows are sorted (kind, rank, name); numbers use the shortest
  /// round-trippable decimal form, so identical runs give identical
  /// bytes.
  void write_csv(std::ostream& os) const;

  /// Aggregate summary JSON: per-metric totals over all ranks plus the
  /// per-rank breakdown. Deterministic for identical runs.
  void write_summary_json(std::ostream& os) const;

 private:
  struct Shard {
    std::map<std::string, double, std::less<>> counters;
    std::map<std::string, double, std::less<>> gauges;
    std::map<std::string, HistogramSummary, std::less<>> histograms;
    std::vector<TraceSpan> spans;
  };

  const Shard& shard(int rank) const {
    SLIPFLOW_REQUIRE(rank >= 0 && rank < ranks());
    return shards_[static_cast<std::size_t>(rank)];
  }
  Shard& shard(int rank) {
    SLIPFLOW_REQUIRE(rank >= 0 && rank < ranks());
    return shards_[static_cast<std::size_t>(rank)];
  }

  std::vector<Shard> shards_;
  bool keep_spans_;
};

/// Chrome trace_event JSON (load in chrome://tracing or
/// https://ui.perfetto.dev): one complete ("ph":"X") event per recorded
/// span, rank mapped to tid. Timestamps are microseconds as Chrome
/// expects.
void write_chrome_trace(const MetricsRegistry& reg, std::ostream& os,
                        const std::string& process_name = "slipflow");

/// Incremental Chrome-trace export: emit one "ph":"X" event per line for
/// rank `rank`'s spans in [first_span, spans.size()), WITHOUT the
/// enclosing {"traceEvents": ...} wrapper, and return the new cursor.
/// A consumer that concatenates successive fragments (joining lines with
/// commas inside a trailing "[...]" wrapper) reconstructs the same events
/// write_chrome_trace would have emitted at the end — this is what lets
/// the campaign server stream a running job's trace to the client
/// fragment by fragment instead of at job end.
std::size_t write_chrome_trace_events(const MetricsRegistry& reg,
                                      std::ostream& os, int rank,
                                      std::size_t first_span);

}  // namespace slipflow::obs
